"""The persistent cache instance (the paper's extended IQ-Twemcached).

A :class:`CacheInstance` is a network node storing :class:`CacheEntry`
objects under a byte budget with a pluggable eviction policy. On top of
plain get/set/delete it speaks:

* the **IQ protocol** — ``iqget``/``iqset``/``iset``/``idelete``/
  ``qareg``/``dar`` (Section 2.3, Algorithms 1–3);
* **dirty-list** operations — create (with marker), append, fetch, delete
  (Section 3.1), plus Redlease acquire/release for recovery workers;
* the **Rejig configuration-id protocol** — every request carries the
  client's configuration id; the instance memoizes the largest id it has
  seen and bounces requests carrying an older one with
  :class:`~repro.errors.StaleConfiguration`. Each stored entry is tagged
  with the id of the configuration that wrote it and is lazily discarded
  when its fragment's id has moved past it (Section 3.2.4).

Persistence is emulated exactly as in the paper (Section 4): a crash
clears the lease table (DRAM) but leaves entries intact; the volatile
baseline wipes them via :meth:`wipe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache.dirtylist import DirtyList, dirty_list_key
from repro.cache.entry import CacheEntry
from repro.cache.eviction import EvictionPolicy, LruPolicy
from repro.cache.leases import LeaseTable, Redlease
from repro.errors import (
    CacheError,
    InstanceDown,
    LeaseBackoff,
    StaleConfiguration,
)
from repro.runtime import Kernel
from repro.sim.network import RemoteNode
from repro.types import CACHE_MISS

__all__ = ["CacheInstance", "CacheOp", "CONFIG_ENTRY_KEY"]

#: Cache key under which the coordinator inserts the latest configuration.
CONFIG_ENTRY_KEY = "__gemini:config"

#: Ops that bypass the configuration-id freshness check (bootstrap and
#: control-plane traffic must work even with a stale client id).
_CONFIG_EXEMPT_OPS = frozenset({
    "get_config", "set_config", "notify_config_id", "stats", "ping", "wipe",
})


@dataclass
class CacheOp:
    """One request to a cache instance.

    ``client_cfg_id`` is the Rejig freshness check; ``fragment_cfg_id`` is
    the validity floor for the entries the request touches.
    """

    op: str
    key: Optional[str] = None
    value: Any = None
    token: Optional[int] = None
    fragment_id: Optional[int] = None
    fragment_cfg_id: int = 0
    client_cfg_id: int = 0
    payload: Any = None
    #: Key list for the multi-key ops (mget/mdelete/batch_iset).
    keys: Optional[Sequence[str]] = None
    #: write_cfg_id tags the entry produced by this op; defaults to
    #: client_cfg_id when unset.
    write_cfg_id: Optional[int] = None

    def tag(self) -> int:
        return self.client_cfg_id if self.write_cfg_id is None else self.write_cfg_id


@dataclass
class InstanceStats:
    """Cumulative counters; the harness samples and differences them."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    sets: int = 0
    deletes: int = 0
    evictions: int = 0
    invalid_discards: int = 0
    dirty_appends: int = 0
    dirty_list_evictions: int = 0
    stale_config_bounces: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.__dict__)


class CacheInstance(RemoteNode):
    """A single persistent cache instance."""

    def __init__(self, sim: Kernel, address: str, memory_bytes: int,
                 policy: Optional[EvictionPolicy] = None,
                 iq_lifetime: float = 0.010,
                 red_lifetime: float = 2.0,
                 servers: int = 16,
                 base_service_time: float = 5e-6,
                 event_log=None) -> None:
        super().__init__(sim, address, servers=servers)
        #: Optional structured protocol-event stream (verify.events).
        self.event_log = event_log
        self.memory_bytes = memory_bytes
        self.policy = policy if policy is not None else LruPolicy()
        self.base_service_time = base_service_time
        self._entries: Dict[str, CacheEntry] = {}
        self._used = 0
        self.leases = LeaseTable(lambda: sim.now, iq_lifetime=iq_lifetime)
        self.red = Redlease(lambda: sim.now, lifetime=red_lifetime)
        #: Largest configuration id this instance has observed (memoized;
        #: survives crashes — the paper keeps it with 40 lines of C in
        #: Twemcached's persistent metadata).
        self.known_config_id = 0
        self.stats = InstanceStats()
        #: Callbacks invoked with each evicted key (replication mirroring,
        #: Section 7 extension).
        self._eviction_listeners: List[Callable[[str], None]] = []

    def subscribe_evictions(self, callback: Callable[[str], None]) -> None:
        """``callback(key)`` on every eviction this instance performs."""
        self._eviction_listeners.append(callback)

    def _emit(self, kind: str, **data: Any) -> None:
        if self.event_log is not None:
            self.event_log.emit(kind, address=self.address, **data)

    # ------------------------------------------------------------------
    # RemoteNode plumbing
    # ------------------------------------------------------------------
    def service_time(self, request: CacheOp) -> float:
        # Multi-key ops cost one base unit per key touched: batching
        # amortizes network round trips, not server CPU.
        if request.keys is not None:
            return self.base_service_time * max(1, len(request.keys))
        if request.op == "batch_iqset" and request.payload:
            return self.base_service_time * len(request.payload)
        if request.op == "get_dirty_page" and request.payload:
            return self.base_service_time * max(
                1, int(request.payload.get("limit", 1)))
        return self.base_service_time

    def handle_request(self, request: CacheOp) -> Any:
        if not self.up:
            raise InstanceDown(self.address)
        if request.op not in _CONFIG_EXEMPT_OPS:
            self._check_config_id(request.client_cfg_id)
        handler = getattr(self, f"op_{request.op}", None)
        if handler is None:
            raise CacheError(f"unknown cache op {request.op!r}")
        return handler(request)

    def _check_config_id(self, client_cfg_id: int) -> None:
        if client_cfg_id < self.known_config_id:
            self.stats.stale_config_bounces += 1
            raise StaleConfiguration(self.known_config_id)
        if client_cfg_id > self.known_config_id:
            self.known_config_id = client_cfg_id

    def fail(self) -> None:
        """Crash: leases (DRAM) vanish, entries (persistent) survive."""
        super().fail()
        self.leases.clear()
        self.red.clear()
        self._emit("leases_cleared")

    def wipe(self) -> None:
        """Discard all content — the VolatileCache baseline's recovery."""
        self._entries.clear()
        self.policy.clear()
        self._used = 0
        self._emit("instance_wiped")

    # ------------------------------------------------------------------
    # Storage internals
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def _lookup(self, key: str, fragment_cfg_id: int) -> Optional[CacheEntry]:
        """Fetch a live, *valid* entry; invalid entries die on the spot."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        if not entry.is_valid_for(fragment_cfg_id):
            self._remove(key)
            self.stats.invalid_discards += 1
            return None
        entry.last_access = self.sim.now
        entry.referenced = True
        self.policy.on_access(key)
        return entry

    def _store(self, key: str, value: Any, config_id: int,
               value_size: int) -> CacheEntry:
        old = self._entries.get(key)
        if old is not None:
            self._used -= old.size
            self.policy.on_remove(key)
        entry = CacheEntry(
            key=key, value=value, config_id=config_id,
            key_size=len(key), value_size=value_size,
            inserted_at=self.sim.now, last_access=self.sim.now,
        )
        self._entries[key] = entry
        self._used += entry.size
        self.policy.on_insert(key)
        self._evict_to_budget(protect=key)
        return entry

    def _remove(self, key: str) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._used -= entry.size
        self.policy.on_remove(key)
        return True

    def _recharge(self, key: str, old_size: int) -> None:
        """An in-place mutation (dirty-list append) changed an entry's size."""
        entry = self._entries[key]
        self._used += entry.size - old_size
        self._evict_to_budget(protect=key)

    def _evict_to_budget(self, protect: Optional[str] = None) -> None:
        while self._used > self.memory_bytes and len(self._entries) > 1:
            victim = self.policy.victim()
            if victim is None:
                break
            if victim == protect:
                # Refresh and pick again; if it is the only entry we stop
                # (a single oversized entry is allowed to overflow).
                self.policy.on_access(victim)
                alternative = self.policy.victim()
                if alternative == victim or alternative is None:
                    break
                victim = alternative
            entry = self._entries.get(victim)
            if entry is not None and isinstance(entry.value, DirtyList):
                self.stats.dirty_list_evictions += 1
                self._emit("dirty_evicted",
                           fragment_id=entry.value.fragment_id)
            self._remove(victim)
            self.stats.evictions += 1
            for listener in self._eviction_listeners:
                listener(victim)

    # ------------------------------------------------------------------
    # Plain data-plane ops
    # ------------------------------------------------------------------
    def op_ping(self, request: CacheOp) -> str:
        return "pong"

    def op_wipe(self, request: CacheOp) -> bool:
        """Management op: discard all content (VolatileCache recovery)."""
        self.wipe()
        return True

    def op_get(self, request: CacheOp) -> Any:
        """Lease-free read (used against secondary replicas, Algorithm 1)."""
        self.stats.gets += 1
        tracer = self.sim.tracer
        entry = self._lookup(request.key, request.fragment_cfg_id)
        if entry is None:
            self.stats.misses += 1
            if tracer is not None:
                tracer.annotate(cache="miss")
            return CACHE_MISS
        self.stats.hits += 1
        if tracer is not None:
            tracer.annotate(cache="hit")
        return entry.value

    def op_set(self, request: CacheOp) -> bool:
        """Lease-free insert (control plane, working-set transfer target)."""
        self.stats.sets += 1
        size = getattr(request.value, "size", 0)
        self._store(request.key, request.value, request.tag(), size)
        return True

    def op_delete(self, request: CacheOp) -> bool:
        self.stats.deletes += 1
        return self._remove(request.key)

    # ------------------------------------------------------------------
    # Multi-key ops (batched recovery, Section 3.2.3 extension)
    # ------------------------------------------------------------------
    def op_mget(self, request: CacheOp) -> Dict[str, Any]:
        """Lease-free read of many keys; missing keys map to CACHE_MISS."""
        out: Dict[str, Any] = {}
        for key in request.keys:
            self.stats.gets += 1
            entry = self._lookup(key, request.fragment_cfg_id)
            if entry is None:
                self.stats.misses += 1
                out[key] = CACHE_MISS
            else:
                self.stats.hits += 1
                out[key] = entry.value
        return out

    def op_mdelete(self, request: CacheOp) -> int:
        """Delete many keys; returns how many were actually present."""
        removed = 0
        for key in request.keys:
            self.stats.deletes += 1
            if self._remove(key):
                removed += 1
        return removed

    def op_batch_iset(self, request: CacheOp) -> Dict[str, Optional[int]]:
        """Per-key ``iset``: delete the key and acquire an I lease on it.

        Keys whose I lease cannot be granted (a client session owns them)
        map to ``None`` — the batch does not back off as a whole.
        """
        tokens: Dict[str, Optional[int]] = {}
        for key in request.keys:
            try:
                lease = self.leases.acquire_i(key)
            except LeaseBackoff:
                tokens[key] = None
                continue
            if self._remove(key):
                self.stats.deletes += 1
            tokens[key] = lease.token
        return tokens

    def op_batch_iqset(self, request: CacheOp) -> Dict[str, bool]:
        """Per-key ``iqset`` with per-key lease tokens.

        ``payload`` is a sequence of ``(key, value, token)`` triples. A
        value of CACHE_MISS means "release and delete" (the batched
        equivalent of ``idelete`` — the secondary had no copy either).
        """
        results: Dict[str, bool] = {}
        for key, value, token in request.payload:
            if value is CACHE_MISS:
                released = self.leases.release_i(key, token)
                if self._remove(key):
                    self.stats.deletes += 1
                results[key] = released
                continue
            if not self.leases.check_i(key, token):
                results[key] = False
                continue
            self.leases.release_i(key, token)
            self.stats.sets += 1
            size = getattr(value, "size", 0)
            self._store(key, value, request.tag(), size)
            results[key] = True
        return results

    # ------------------------------------------------------------------
    # IQ protocol
    # ------------------------------------------------------------------
    def op_iqget(self, request: CacheOp) -> Tuple[str, Any]:
        """Read with I-lease-on-miss. Returns ("hit", value) or
        ("miss", token); raises :class:`LeaseBackoff` on lease conflict."""
        self.stats.gets += 1
        tracer = self.sim.tracer
        entry = self._lookup(request.key, request.fragment_cfg_id)
        if entry is not None:
            self.stats.hits += 1
            if tracer is not None:
                # Lands on the enclosing rpc span (Network._serve runs
                # sync handlers under tracer.serve_push).
                tracer.annotate(cache="hit")
            return ("hit", entry.value)
        self.stats.misses += 1
        if tracer is not None:
            tracer.annotate(cache="miss")
        lease = self.leases.acquire_i(request.key)
        return ("miss", lease.token)

    def op_iset(self, request: CacheOp) -> int:
        """Delete the key and acquire an I lease on it (Algorithms 1 & 3:
        claiming a dirty key before refreshing it)."""
        lease = self.leases.acquire_i(request.key)
        if self._remove(request.key):
            self.stats.deletes += 1
        return lease.token

    def op_iqset(self, request: CacheOp) -> bool:
        """Install a computed value if the I lease is still valid; the
        lease is consumed either way."""
        if not self.leases.check_i(request.key, request.token):
            return False
        self.leases.release_i(request.key, request.token)
        self.stats.sets += 1
        size = getattr(request.value, "size", 0)
        self._store(request.key, request.value, request.tag(), size)
        return True

    def op_idelete(self, request: CacheOp) -> bool:
        """Release an I lease without installing (Algorithm 3 line 16)."""
        released = self.leases.release_i(request.key, request.token)
        if self._remove(request.key):
            self.stats.deletes += 1
        return released

    def op_qareg(self, request: CacheOp) -> int:
        """Acquire a Q lease (write intent). Voids any I lease; if the Q
        lease expires unreleased the instance deletes the entry."""
        lease = self.leases.acquire_q(request.key)
        self.sim.schedule(self.leases.iq_lifetime, self._expire_q,
                          request.key, lease.token)
        return lease.token

    def _expire_q(self, key: str, token: int) -> None:
        if not self.up:
            return
        if self.leases.q_outstanding(key, token):
            self.leases.release_q(key, token)
            if self._remove(key):
                self.stats.deletes += 1

    def op_dar(self, request: CacheOp) -> bool:
        """Delete-and-release: complete a write-around delete."""
        if self._remove(request.key):
            self.stats.deletes += 1
        return self.leases.release_q(request.key, request.token)

    # ------------------------------------------------------------------
    # Dirty lists & Redlease
    # ------------------------------------------------------------------
    def op_create_dirty(self, request: CacheOp) -> bool:
        """Coordinator initializes the list *with* the marker at the
        transient-mode transition. An existing complete list is preserved
        (Figure 4 arrow 5: a primary failing again mid-recovery must not
        reset the log covering its first outage).

        ``payload={"fresh": False}`` marks a *resumed* episode (arrow 5):
        the list must already cover earlier writes, so if it is missing
        or partial the replacement is created *without* the marker — a
        fresh marker here would falsely certify a log that lost its
        prefix, letting recovery restore the floor over unrepaired
        writes. The marker-less list makes recovery detect the loss and
        discard the fragment instead.
        """
        key = dirty_list_key(request.fragment_id)
        existing = self._entries.get(key)
        if existing is not None and existing.value.complete:
            self.policy.on_access(key)
            self._emit("dirty_created", fragment_id=request.fragment_id,
                       marker=True, preserved=True)
            return True
        fresh = request.payload is None or request.payload.get("fresh", True)
        dirty = DirtyList(request.fragment_id, marker=fresh)
        self._store(key, dirty, request.tag(), dirty.size)
        self._emit("dirty_created", fragment_id=request.fragment_id,
                   marker=fresh, preserved=False)
        return fresh

    def op_append_dirty(self, request: CacheOp) -> bool:
        """Append a written key; recreates the list *without* the marker
        if it was evicted (detected later as partial). Returns whether the
        list is complete."""
        key = dirty_list_key(request.fragment_id)
        entry = self._entries.get(key)
        if entry is None:
            dirty = DirtyList(request.fragment_id, marker=False)
            entry = self._store(key, dirty, request.tag(), dirty.size)
            self._emit("dirty_recreated", fragment_id=request.fragment_id)
        else:
            self.policy.on_access(key)
        dirty = entry.value
        old_size = entry.size
        dirty.append(request.key)
        entry.value_size = dirty.size
        self._recharge(key, old_size)
        self.stats.dirty_appends += 1
        return dirty.complete

    def op_get_dirty(self, request: CacheOp) -> Any:
        """Fetch the dirty list (or CACHE_MISS if it was evicted)."""
        entry = self._entries.get(dirty_list_key(request.fragment_id))
        if entry is None:
            return CACHE_MISS
        self.policy.on_access(entry.key)
        return entry.value

    def op_get_dirty_page(self, request: CacheOp) -> Any:
        """Fetch one chunk of the dirty list (cursor-based pagination).

        ``payload`` is ``{"after": seq, "limit": n}``; returns a
        :class:`~repro.cache.dirtylist.DirtyPage` or CACHE_MISS if the
        list was evicted.
        """
        entry = self._entries.get(dirty_list_key(request.fragment_id))
        if entry is None:
            return CACHE_MISS
        self.policy.on_access(entry.key)
        return entry.value.page(request.payload.get("after", 0),
                                request.payload.get("limit", 64))

    def op_remove_dirty_key(self, request: CacheOp) -> bool:
        """Drop one repaired key from the list (Algorithm 1 line 8)."""
        entry = self._entries.get(dirty_list_key(request.fragment_id))
        if entry is None:
            return False
        old_size = entry.size
        removed = entry.value.discard(request.key)
        if removed:
            entry.value_size = entry.value.size
            self._recharge(entry.key, old_size)
        return removed

    def op_delete_dirty(self, request: CacheOp) -> bool:
        removed = self._remove(dirty_list_key(request.fragment_id))
        if removed:
            self._emit("dirty_deleted", fragment_id=request.fragment_id)
        return removed

    def op_red_acquire(self, request: CacheOp) -> int:
        """Redlease on a fragment's dirty list for a recovery worker."""
        resource = dirty_list_key(request.fragment_id)
        sanitizer = self.sim.sanitizer
        # Snapshot before the acquire: a healthy Redlease raises
        # LeaseBackoff while a live holder exists, so reaching the grant
        # with `prior` alive means mutual exclusion broke (the sanitizer
        # catches chaos mutants that re-break the lease table itself).
        prior = self.red.holder(resource) if sanitizer is not None else None
        lease = self.red.acquire(resource)
        if sanitizer is not None:
            sanitizer.on_red_acquire(self.address, resource, lease.token,
                                     holder_alive=prior is not None)
        self._emit("red_acquired", fragment_id=request.fragment_id,
                   token=lease.token,
                   expires_at=self.sim.now + self.red.lifetime)
        return lease.token

    def op_red_release(self, request: CacheOp) -> bool:
        released = self.red.release(dirty_list_key(request.fragment_id),
                                    request.token)
        if released and self.sim.sanitizer is not None:
            self.sim.sanitizer.on_red_release(
                self.address, dirty_list_key(request.fragment_id))
        if released:
            self._emit("red_released", fragment_id=request.fragment_id,
                       token=request.token)
        return released

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def op_set_config(self, request: CacheOp) -> bool:
        """Coordinator inserts the latest configuration as a cache entry."""
        config = request.value
        if config.config_id > self.known_config_id:
            self.known_config_id = config.config_id
        self._store(CONFIG_ENTRY_KEY, config, config.config_id,
                    config.approximate_size())
        return True

    def op_get_config(self, request: CacheOp) -> Any:
        entry = self._entries.get(CONFIG_ENTRY_KEY)
        if entry is None:
            return CACHE_MISS
        self.policy.on_access(CONFIG_ENTRY_KEY)
        return entry.value

    def op_notify_config_id(self, request: CacheOp) -> int:
        if request.client_cfg_id > self.known_config_id:
            self.known_config_id = request.client_cfg_id
        return self.known_config_id

    def op_stats(self, request: CacheOp) -> Dict[str, Any]:
        snap = self.stats.snapshot()
        snap["used_bytes"] = self._used
        snap["entry_count"] = len(self._entries)
        snap["known_config_id"] = self.known_config_id
        snap["lease_backoffs"] = self.leases.backoffs
        return snap

    # ------------------------------------------------------------------
    # Direct (non-RPC) helpers for tests and the harness
    # ------------------------------------------------------------------
    def peek(self, key: str) -> Any:
        """Inspect an entry without touching stats or LRU state."""
        entry = self._entries.get(key)
        return CACHE_MISS if entry is None else entry.value

    def contains(self, key: str) -> bool:
        return key in self._entries

    def hit_ratio(self) -> float:
        total = self.stats.hits + self.stats.misses
        return self.stats.hits / total if total else 0.0
