"""Discrete-event simulation substrate.

The paper evaluated Gemini on an 11-node Emulab cluster. This package
replaces that hardware with a deterministic discrete-event simulator:

* :mod:`repro.sim.core` — event heap, simulated clock, one-shot events,
  generator-based processes (a small SimPy-like kernel).
* :mod:`repro.sim.rng` — named, independently-seeded random streams so
  that experiments are reproducible and individual components can be
  re-seeded without perturbing the others.
* :mod:`repro.sim.network` — message latency, RPC, and service stations
  (bounded-concurrency queues) used to model cache and data-store nodes.
* :mod:`repro.sim.failures` — failure/recovery schedules for nodes.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.rng import RngRegistry
from repro.sim.network import LatencyModel, Network, RemoteNode, ServiceStation
from repro.sim.failures import FailureSchedule, FailureInjector

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FailureInjector",
    "FailureSchedule",
    "LatencyModel",
    "Network",
    "Process",
    "RemoteNode",
    "RngRegistry",
    "ServiceStation",
    "Simulator",
    "Timeout",
]
