"""Named, independently-seeded random streams.

Experiments draw randomness from many places (key choice per client
thread, value sizes, network latency, failure jitter). Giving each
consumer its own stream keyed by a stable name means changing how one
component consumes randomness does not perturb the others, which keeps
regression comparisons meaningful.
"""

from __future__ import annotations

import hashlib
import random
import warnings
from typing import Dict, Optional

__all__ = ["RngRegistry", "fallback_stream"]


class RngRegistry:
    """A factory of :class:`random.Random` streams derived from one seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            # The registry is the one blessed construction site: seeds
            # derive from the registry seed, preserving determinism.
            # geminilint: disable=GEM001 -- RngRegistry is the blessed stream factory
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per experiment repetition)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))


def fallback_stream(rng: Optional[random.Random], owner: str,
                    seed: int = 0) -> random.Random:
    """Return ``rng``, or a deprecated fixed-seed fallback stream.

    Components must be handed a stream from :class:`RngRegistry`;
    constructing ``random.Random(0)`` silently at each call site scatters
    seed derivation across the tree and couples unrelated consumers. The
    fallback keeps old call sites working (same ``Random(seed)`` draw
    sequence as before, so recorded fingerprints do not move) but warns:
    it will become an error once every caller injects a stream.
    """
    if rng is not None:
        return rng
    warnings.warn(
        f"{owner}: no rng stream injected; falling back to "
        f"random.Random({seed}). Pass an RngRegistry stream instead "
        f"(e.g. registry.stream({owner!r})).",
        DeprecationWarning,
        stacklevel=3,
    )
    # Deprecation shim: the legacy fixed-seed fallback lives here (with
    # a warning) so no other module constructs random.Random directly.
    # geminilint: disable=GEM001 -- documented deprecation fallback, warns on use
    return random.Random(seed)
