"""Named, independently-seeded random streams.

Experiments draw randomness from many places (key choice per client
thread, value sizes, network latency, failure jitter). Giving each
consumer its own stream keyed by a stable name means changing how one
component consumes randomness does not perturb the others, which keeps
regression comparisons meaningful.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of :class:`random.Random` streams derived from one seed."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per experiment repetition)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
