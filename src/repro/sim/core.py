"""A small deterministic discrete-event simulation kernel.

The kernel is intentionally SimPy-flavoured: simulation actors are Python
generators that ``yield`` the things they wait for. Supported yields:

* a ``float``/``int`` — sleep for that many simulated seconds;
* a :class:`Timeout` — same, constructed explicitly;
* an :class:`Event` — wait until it is triggered (succeed or fail);
* a :class:`Process` — wait for another process to finish (its return
  value becomes the value of the ``yield`` expression);
* an :class:`AllOf` / :class:`AnyOf` — composite waits.

Determinism: events scheduled for the same simulated time fire in FIFO
order of scheduling (a monotonically increasing sequence number breaks
ties in the heap), so a fixed seed yields a bit-identical run.
"""

from __future__ import annotations

import heapq
import weakref
from collections import deque
from typing import (TYPE_CHECKING, Any, Callable, Deque, Dict, Generator,
                    Iterable, List, Optional, Tuple)

# geminilint: disable=GEM001 -- host busy-time counter only (see _perf below)
import time

from repro.errors import Interrupt, SimulationError

if TYPE_CHECKING:  # runtime import would be a cycle; hooks are optional
    from repro.obs.trace import Tracer
    from repro.sim.sanitizer import SimSanitizer

__all__ = ["Simulator", "Event", "Timeout", "Process", "AllOf", "AnyOf",
           "KernelCounters"]

_PENDING = object()

#: Host-CPU clock for the always-on per-process busy counter. This is the
#: only wall-clock read in the kernel; it feeds `Simulator.busy_profile`
#: (the repro.obs profiling report) and never influences simulated
#: behaviour — simulated time comes exclusively from the event heap.
# geminilint: disable=GEM001 -- host busy profile only; never in sim state
_perf = time.perf_counter

#: Simulation actors are plain generators; what they yield/receive is
#: heterogeneous by design (floats, Events, Processes), hence Any.
SimGenerator = Generator[Any, Any, Any]

#: A scheduled kernel callback with its pre-bound arguments.
_Callback = Callable[..., None]


class KernelCounters:
    """Always-on kernel profiling counters (O(1) per touch).

    These are plain monotone integers kept regardless of whether a
    tracer is installed: they cost one add/compare per scheduling
    decision and feed the :mod:`repro.obs.profile` report and benchmark
    result JSON. ``heap_high_water`` / ``now_queue_high_water`` expose
    the kernel's peak backlog, the usual first clue when a scenario's
    wall-clock time blows up.
    """

    __slots__ = ("steps", "events_created", "processes_created",
                 "heap_pushes", "heap_high_water", "now_queue_high_water")

    def __init__(self) -> None:
        self.steps = 0
        self.events_created = 0
        self.processes_created = 0
        self.heap_pushes = 0
        self.heap_high_water = 0
        self.now_queue_high_water = 0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; it is later *succeeded* with a value or
    *failed* with an exception. Waiting processes are resumed in the order
    they started waiting.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Event"], None]] = []
        sim.counters.events_created += 1
        if sim.sanitizer is not None:
            sim.sanitizer.on_event_created(self)

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self.sim._schedule_trigger(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._exception = exception
        self.sim._schedule_trigger(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event triggers.

        If the event already triggered (and was dispatched), the callback
        runs at the current simulated time on the next kernel step.
        """
        if self.sim.sanitizer is not None:
            self._san_observed = True
        if self.triggered and self._dispatched:
            self.sim.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)

    # -- kernel internals ------------------------------------------------
    _dispatched: bool = False
    #: Sanitizer bookkeeping: set once anything registered interest in
    #: this event (a waiter, run_until), so an unobserved process crash
    #: can be told apart from an awaited one.
    _san_observed: bool = False

    def _dispatch(self) -> None:
        self._dispatched = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        if not self.triggered:
            self.succeed(value)


class AllOf(Event):
    """Succeeds once every child event has triggered.

    Fails with the first child failure; the values of an all-success run
    are delivered as a list in child order. Children that already
    triggered before construction are accounted for immediately — a
    composite over resolved events resolves at construction instead of
    waiting (forever, if the kernel has drained) for a redispatch.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            if child.triggered:
                if not child.ok:
                    assert child._exception is not None  # not ok => failed
                    self.fail(child._exception)
                    return
                self._remaining -= 1
            else:
                child.add_callback(self._on_child)
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            assert child._exception is not None  # not ok => failed
            self.fail(child._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Succeeds (or fails) with the first child event that triggers.

    The success value is the ``(index, value)`` pair of the winner. An
    already-triggered child wins at construction (first in child order),
    instead of the composite waiting for a redispatch that never comes
    once the kernel has drained.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for index, child in enumerate(self._children):
            if self.triggered:
                break  # a pre-resolved child already won
            if child.triggered:
                self._on_child(index, child)
            else:
                child.add_callback(lambda c, i=index: self._on_child(i, c))

    def _on_child(self, index: int, child: Event) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed((index, child.value))
        else:
            assert child._exception is not None  # not ok => failed
            self.fail(child._exception)


class Process(Event):
    """A generator-based simulation actor.

    A process is itself an :class:`Event` that triggers when the generator
    returns (success, value = the generator's return value) or raises
    (failure). This is how ``yield other_process`` composes.
    """

    def __init__(self, sim: "Simulator", generator: SimGenerator,
                 name: str = "") -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(f"Process needs a generator, got {generator!r}")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupt_cause: Any = _PENDING
        #: Invalidates in-flight sleep timers after an interrupt.
        self._wait_epoch = 0
        #: Host-CPU seconds spent stepping this process (busy counter);
        #: folded into ``sim.busy_wall`` by name when the process ends.
        self.busy_time = 0.0
        sim.counters.processes_created += 1
        sim._live_processes.add(self)
        if sim.sanitizer is not None:
            sim.sanitizer.on_process_created(self)
        if sim.tracer is not None:
            sim.tracer.on_process_created(self)
        sim.schedule(0.0, self._resume, None, None)

    def interrupt(self, cause: Any = None) -> None:
        """Inject an :class:`~repro.errors.Interrupt` into the process.

        The interrupt is raised at the process's current (or next) yield
        point. Interrupting a finished process is a no-op, and so is a
        second interrupt before the first one is delivered: the first
        cause wins and no redundant delivery is scheduled.
        """
        if self.triggered:
            return
        if self._interrupt_cause is not _PENDING:
            return  # an interrupt is already in flight; first cause wins
        self._interrupt_cause = cause
        self._wait_epoch += 1  # cancel any in-flight sleep timer
        waiting, self._waiting_on = self._waiting_on, None
        # Resume immediately at the current simulated time; the stale
        # callback left on `waiting` is ignored via the _waiting_on check.
        self.sim.schedule(0.0, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        if self.triggered or self._interrupt_cause is _PENDING:
            return
        cause, self._interrupt_cause = self._interrupt_cause, _PENDING
        self._step(Interrupt(cause), is_exception=True)

    def _on_wait_complete(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # superseded by an interrupt
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event._exception)

    def _resume(self, value: Any, exception: Optional[BaseException]) -> None:
        if self.triggered:
            return
        if exception is not None:
            self._step(exception, is_exception=True)
        else:
            self._step(value, is_exception=False)

    def _step(self, payload: Any, is_exception: bool) -> None:
        # Each _step is one inter-yield segment: the sanitizer (when
        # installed) attributes every footprint recorded inside it to
        # this process and treats the segment as an atomic section. The
        # tracer needs no per-step hook: it reads ``sim.current_process``
        # (maintained here) when a span is opened or closed.
        sim = self.sim
        sanitizer = sim.sanitizer
        if sanitizer is not None:
            sanitizer.enter_process(self)
        previous = sim.current_process
        sim.current_process = self
        started = _perf()
        try:
            try:
                if is_exception:
                    target = self._generator.throw(payload)
                else:
                    target = self._generator.send(payload)
            except StopIteration as stop:
                if sim.tracer is not None:
                    sim.tracer.on_process_end(self)
                sim._retire_process(self)
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate to waiters
                if sanitizer is not None:
                    sanitizer.on_process_crash(self, exc)
                if sim.tracer is not None:
                    # Orphan-close the crashed process's open spans, then
                    # release its context — a crash must never leak spans.
                    sim.tracer.on_process_crash(self, exc)
                    sim.tracer.on_process_end(self)
                sim._retire_process(self)
                self.fail(exc)
                return
            self._wait_on(target)
        finally:
            self.busy_time += _perf() - started
            sim.current_process = previous
            if sanitizer is not None:
                sanitizer.exit_process(self)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            # Fast path: a plain sleep needs no Event machinery.
            if target < 0:
                self._step(SimulationError(f"negative timeout {target}"),
                           is_exception=True)
                return
            self._wait_epoch += 1
            self.sim.schedule(float(target), self._timer_resume,
                              self._wait_epoch)
            return
        if not isinstance(target, Event):
            self._step(
                SimulationError(f"process {self.name} yielded {target!r}"),
                is_exception=True,
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_wait_complete)

    def _timer_resume(self, epoch: int) -> None:
        if self.triggered or epoch != self._wait_epoch:
            return  # superseded by an interrupt
        self._step(None, is_exception=False)


class Simulator:
    """The event loop: a heap of (time, seq, callback) entries."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, _Callback, Tuple[Any, ...]]] = []
        #: Zero-delay callbacks: FIFO at the current instant, bypassing
        #: the heap (the majority of kernel events are dispatches).
        self._now_queue: Deque[Tuple[_Callback, Tuple[Any, ...]]] = deque()
        self._seq = 0
        self._running = False
        #: Optional interleaving sanitizer (repro.sim.sanitizer); hooks
        #: throughout the kernel are no-ops while this stays None.
        self.sanitizer: Optional["SimSanitizer"] = None
        #: Optional causal tracer (repro.obs.trace); same contract as the
        #: sanitizer hook — passive, no-op while None.
        self.tracer: Optional["Tracer"] = None
        #: Always-on profiling counters (cheap; see KernelCounters).
        self.counters = KernelCounters()
        #: The process currently being stepped, or None in kernel
        #: callbacks / harness code. Maintained by Process._step; read by
        #: the tracer for actor attribution.
        self.current_process: Optional[Process] = None
        #: Host-CPU busy seconds per process name, folded in when each
        #: process ends (see busy_profile for still-live processes).
        self.busy_wall: Dict[str, float] = {}
        self._live_processes: "weakref.WeakSet[Process]" = weakref.WeakSet()

    def _retire_process(self, process: Process) -> None:
        """Fold a finished process's busy counter into the profile."""
        busy = process.busy_time
        if busy:
            name = process.name
            self.busy_wall[name] = self.busy_wall.get(name, 0.0) + busy
            process.busy_time = 0.0
        self._live_processes.discard(process)

    def busy_profile(self) -> Dict[str, float]:
        """Host-CPU busy seconds per process name, including live ones.

        Host wall-clock, NOT deterministic: callers embedding it in
        fingerprinted artifacts must drop it (see repro.obs.profile).
        """
        out = dict(self.busy_wall)
        for process in self._live_processes:
            if process.busy_time:
                out[process.name] = (out.get(process.name, 0.0)
                                     + process.busy_time)
        return out

    # -- scheduling ------------------------------------------------------
    def schedule(self, delay: float, callback: _Callback,
                 *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        counters = self.counters
        if delay == 0:
            self._now_queue.append((callback, args))
            if len(self._now_queue) > counters.now_queue_high_water:
                counters.now_queue_high_water = len(self._now_queue)
            return
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, args))
        counters.heap_pushes += 1
        if len(self._heap) > counters.heap_high_water:
            counters.heap_high_water = len(self._heap)

    def schedule_at(self, when: float, callback: _Callback,
                    *args: Any) -> None:
        """Run ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        self.schedule(when - self.now, callback, *args)

    def _schedule_trigger(self, event: Event) -> None:
        self.schedule(0.0, event._dispatch)

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: SimGenerator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback. Returns False when idle."""
        if self._now_queue:
            self.counters.steps += 1
            callback, args = self._now_queue.popleft()
            callback(*args)
            return True
        if not self._heap:
            return False
        self.counters.steps += 1
        when, __, callback, args = heapq.heappop(self._heap)
        self.now = when
        callback(*args)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queues drain or the clock reaches ``until``.

        When ``until`` is given the clock is advanced exactly to it even if
        the work drained earlier, which keeps time-based assertions simple.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._now_queue or self._heap:
                if not self._now_queue and until is not None:
                    if self._heap[0][0] > until:
                        break
                self.step()
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def run_until(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; returns its value (or raises).

        ``limit`` bounds the simulated time to guard against deadlocks.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if self.sanitizer is not None:
            event._san_observed = True
        self._running = True
        try:
            while not (event.triggered and event._dispatched):
                if not self._now_queue and not self._heap:
                    raise SimulationError("simulation deadlocked waiting for event")
                if (limit is not None and not self._now_queue
                        and self._heap[0][0] > limit):
                    raise SimulationError(f"event not triggered by t={limit}")
                self.step()
        finally:
            self._running = False
        return event.value
