"""Network, RPC, and service-capacity models.

The paper's testbed was a 1 Gbps LAN with off-the-shelf servers; what its
results actually depend on is the *ratio* of costs — a cache hit costs
~100 µs end to end while a data-store query costs milliseconds and the
data store saturates under a miss storm. This module models exactly those
effects:

* :class:`LatencyModel` — one-way message latency with jitter.
* :class:`ServiceStation` — a bounded-concurrency queue in front of each
  node; queueing delay emerges naturally under load.
* :class:`Network` — RPC between registered :class:`RemoteNode` objects.
  A node that is down makes callers wait out an RPC timeout and then see
  :class:`~repro.errors.HostUnreachable`, mirroring how a real client
  library observes a failed memcached server.

The network also models **link faults** (used by the chaos engine):
:meth:`Network.partition` / :meth:`Network.heal` cut both directions
between two endpoints, :meth:`Network.drop_link` cuts one direction
(asymmetric partition: the request is *delivered and executed* but the
response never returns), and :meth:`Network.delay_link` adds a latency
spike. Rules are keyed by ``(source, destination)`` names where either
side may be the wildcard ``"*"``. Callers identify themselves by issuing
RPCs through a :meth:`Network.bound` handle; anonymous calls only match
wildcard-source rules.
"""

from __future__ import annotations

import random
from collections import deque
from typing import (TYPE_CHECKING, Any, Deque, Dict, Generator, Optional,
                    Set, Tuple)

from repro.config.defaults import DEFAULT_RPC_UNREACHABLE_DELAY
from repro.errors import HostUnreachable, RequestTimeout, SimulationError
from repro.sim.core import Event, Simulator

if TYPE_CHECKING:  # tracing types only; the hooks stay optional at runtime
    from repro.obs.trace import Span
    from repro.runtime import Kernel

__all__ = ["LatencyModel", "ServiceStation", "RemoteNode", "Network",
           "NetworkHandle"]


class LatencyModel:
    """One-way network latency: ``base`` plus uniform jitter.

    Defaults approximate an intra-datacenter LAN (~50 µs one way).
    """

    def __init__(self, rng: random.Random, base: float = 50e-6, jitter: float = 20e-6) -> None:
        if base < 0 or jitter < 0:
            raise SimulationError("latency parameters must be non-negative")
        self.rng = rng
        self.base = base
        self.jitter = jitter

    def sample(self) -> float:
        if self.jitter == 0:
            return self.base
        return self.base + self.rng.random() * self.jitter


class ServiceStation:
    """A FIFO queue served by ``servers`` parallel servers.

    Requests carry their own service time; when all servers are busy, new
    requests wait. This is the mechanism behind the paper's low/high load
    distinction: under high load the data store's station saturates and
    miss latency balloons.
    """

    def __init__(self, sim: "Kernel", servers: int = 1) -> None:
        if servers < 1:
            raise SimulationError("a station needs at least one server")
        self.sim = sim
        self.servers = servers
        self._busy = 0
        self._queue: Deque[Tuple[Event, float, float]] = deque()
        # Cumulative counters for metrics/ablation.
        self.served = 0
        self.total_wait = 0.0
        self.total_service = 0.0

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def busy_servers(self) -> int:
        return self._busy

    def submit(self, service_time: float) -> Event:
        """Request service; the returned event succeeds when service ends."""
        if service_time < 0:
            raise SimulationError("negative service time")
        done = self.sim.event()
        entry = (done, service_time, self.sim.now)
        if self._busy < self.servers:
            self._start(entry)
        else:
            self._queue.append(entry)
        return done

    def _start(self, entry: Tuple[Event, float, float]) -> None:
        done, service_time, enqueued_at = entry
        self._busy += 1
        self.total_wait += self.sim.now - enqueued_at
        self.total_service += service_time
        self.sim.schedule(service_time, self._finish, done)

    def _finish(self, done: Event) -> None:
        self._busy -= 1
        self.served += 1
        if not done.triggered:
            done.succeed(self.sim.now)
        if self._queue and self._busy < self.servers:
            self._start(self._queue.popleft())

    def drain(self) -> None:
        """Fail all queued requests (used when a node crashes)."""
        while self._queue:
            done, __, ___ = self._queue.popleft()
            if not done.triggered:
                done.fail(HostUnreachable("<station drained>"))


class RemoteNode:
    """Base class for anything reachable through :class:`Network`.

    Subclasses implement :meth:`handle_request` (which may be a plain
    function or a generator to consume further simulated time) and
    :meth:`service_time` (CPU/storage cost of the request at the node).

    Nodes are kernel-agnostic (:class:`repro.runtime.Kernel`): the same
    subclass instances serve RPCs in simulation and, hosted by a
    :mod:`repro.live` node process, over real TCP.
    """

    def __init__(self, sim: "Kernel", address: str, servers: int = 8) -> None:
        self.sim = sim
        self.address = address
        self.up = True
        self.station = ServiceStation(sim, servers=servers)

    def service_time(self, request: Any) -> float:
        """Per-request service cost at this node; override as needed."""
        return 5e-6

    def handle_request(self, request: Any) -> Any:
        raise NotImplementedError

    def fail(self) -> None:
        """Take the node down; in-queue requests are dropped."""
        self.up = False
        self.station.drain()

    def recover(self) -> None:
        self.up = True


class Network:
    """RPC fabric connecting :class:`RemoteNode` objects.

    ``call`` returns a :class:`Process` (hence an event): ``yield`` it from
    a client process to get the response, or observe the handler's
    exception — application-level errors such as
    :class:`~repro.errors.LeaseBackoff` propagate through the RPC exactly
    like a real client library surfacing a server error code.
    """

    #: How long a caller waits before concluding a host is unreachable.
    #: Shared with the live runtime (repro.config.defaults) so sim and
    #: live deployments agree on RPC deadlines.
    DEFAULT_UNREACHABLE_DELAY = DEFAULT_RPC_UNREACHABLE_DELAY

    def __init__(self, sim: Simulator, latency: LatencyModel,
                 unreachable_delay: Optional[float] = None) -> None:
        self.sim = sim
        self.latency = latency
        self.unreachable_delay = (
            self.DEFAULT_UNREACHABLE_DELAY if unreachable_delay is None
            else unreachable_delay
        )
        self._nodes: Dict[str, RemoteNode] = {}
        self.messages_sent = 0
        #: Always-on per-link traffic counter keyed (source, destination);
        #: anonymous callers count under "<anon>". Feeds repro.obs.profile.
        self.link_messages: Dict[Tuple[str, str], int] = {}
        #: Link-fault rules: ``(src, dst)`` patterns, ``"*"`` wildcards.
        self._link_drop: Set[Tuple[str, str]] = set()
        self._link_delay: Dict[Tuple[str, str], float] = {}
        self.messages_dropped = 0

    def register(self, node: RemoteNode) -> None:
        if node.address in self._nodes:
            raise SimulationError(f"duplicate address {node.address!r}")
        self._nodes[node.address] = node

    def node(self, address: str) -> RemoteNode:
        try:
            return self._nodes[address]
        except KeyError:
            raise HostUnreachable(address, f"unknown address {address!r}") from None

    def bound(self, source: str) -> "NetworkHandle":
        """A facade whose RPCs carry ``source`` as the caller identity."""
        return NetworkHandle(self, source)

    # ------------------------------------------------------------------
    # Link faults (network partitions, asymmetric drops, delay spikes)
    # ------------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Cut both directions between endpoints ``a`` and ``b``."""
        self.drop_link(a, b)
        self.drop_link(b, a)

    def heal(self, a: str, b: str) -> None:
        """Undo :meth:`partition` (and any one-way rules between a, b)."""
        self.heal_link(a, b)
        self.heal_link(b, a)

    def drop_link(self, src: str, dst: str) -> None:
        """Drop messages flowing ``src -> dst`` (asymmetric partition)."""
        self._link_drop.add((src, dst))

    def heal_link(self, src: str, dst: str) -> None:
        self._link_drop.discard((src, dst))
        self._link_delay.pop((src, dst), None)

    def delay_link(self, src: str, dst: str, extra: float) -> None:
        """Add ``extra`` seconds of one-way latency on ``src -> dst``."""
        if extra < 0:
            raise SimulationError("link delay must be non-negative")
        self._link_delay[(src, dst)] = extra

    def heal_all(self) -> None:
        self._link_drop.clear()
        self._link_delay.clear()

    @staticmethod
    def _matches(pattern: str, name: Optional[str]) -> bool:
        return pattern == "*" or (name is not None and pattern == name)

    def link_dropped(self, src: Optional[str], dst: Optional[str]) -> bool:
        if not self._link_drop:
            return False
        return any(self._matches(ps, src) and self._matches(pd, dst)
                   for ps, pd in self._link_drop)

    def link_delay(self, src: Optional[str], dst: Optional[str]) -> float:
        if not self._link_delay:
            return 0.0
        matching = [extra for (ps, pd), extra in self._link_delay.items()
                    if self._matches(ps, src) and self._matches(pd, dst)]
        return max(matching, default=0.0)

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------
    def call(self, address: str, request: Any,
             timeout: Optional[float] = None,
             source: Optional[str] = None) -> Event:
        """Issue an RPC; returns an event yielding the response.

        Implemented as a callback state machine (not a process) because
        RPCs dominate the kernel's event traffic. ``source`` names the
        caller for link-fault matching (see :meth:`bound`).

        When a tracer is installed, an rpc span opens here and is threaded
        *by value* through the state machine to :meth:`_settle` (every
        path — drop, dead host, drained station, handler reply — ends
        there). Observing completion via ``done.add_callback`` instead
        would flip the event's sanitizer-observed flag and suppress
        crashed-process findings, breaking trace passivity.
        """
        done = self.sim.event()
        self.messages_sent += 1
        link = (source if source is not None else "<anon>", address)
        self.link_messages[link] = self.link_messages.get(link, 0) + 1
        tracer = self.sim.tracer
        span = (tracer.begin_rpc(address, request, source)
                if tracer is not None else None)
        if self.link_dropped(source, address):
            # The request never reaches the destination; the caller waits
            # out the RPC timeout exactly as against a dead host.
            self.messages_dropped += 1
            if span is not None:
                span.attrs["dropped"] = True
            self.sim.schedule(self.unreachable_delay, self._settle,
                              done, None, HostUnreachable(address), span)
        else:
            self.sim.schedule(
                self.latency.sample() + self.link_delay(source, address),
                self._arrive, address, request, done, source, span)
        if timeout is None:
            return done
        return self.sim.process(self._with_timeout(done, timeout),
                                name=f"rpc-timeout:{address}")

    def _with_timeout(self, work: Event,
                      timeout: float) -> Generator[Any, Any, Any]:
        deadline = self.sim.timeout(timeout)
        index, value = yield self.sim.any_of([work, deadline])
        if index == 1:
            raise RequestTimeout(f"rpc exceeded {timeout}s")
        return value

    def _arrive(self, address: str, request: Any, done: Event,
                source: Optional[str] = None,
                span: Optional["Span"] = None) -> None:
        node = self._nodes.get(address)
        if node is None or not node.up:
            # The caller's RPC times out against a dead host.
            self.sim.schedule(self.unreachable_delay, self._settle,
                              done, None, HostUnreachable(address), span)
            return
        served = node.station.submit(node.service_time(request))
        served.add_callback(
            lambda event: self._serve(node, request, done, event, source,
                                      span))

    def _serve(self, node: RemoteNode, request: Any, done: Event,
               served: Event, source: Optional[str] = None,
               span: Optional["Span"] = None) -> None:
        if not served.ok or not node.up:
            # The node died while our request was queued or in service.
            self.sim.schedule(self.unreachable_delay, self._settle,
                              done, None, HostUnreachable(node.address), span)
            return
        try:
            sanitizer = self.sim.sanitizer
            tracer = self.sim.tracer
            if sanitizer is not None and tracer is not None:
                with sanitizer.acting_as(source):
                    ctx = tracer.serve_push(span, source)
                    try:
                        result = node.handle_request(request)
                    finally:
                        tracer.serve_pop(ctx)
            elif sanitizer is not None:
                # Synchronous handlers run in kernel-callback context;
                # attribute their shared-state footprints to the RPC's
                # source session rather than to "<kernel>".
                with sanitizer.acting_as(source):
                    result = node.handle_request(request)
            elif tracer is not None:
                # Same attribution for the tracer: handler-side annotate
                # calls land on the rpc span, not on "<kernel>".
                ctx = tracer.serve_push(span, source)
                try:
                    result = node.handle_request(request)
                finally:
                    tracer.serve_pop(ctx)
            else:
                result = node.handle_request(request)
        except BaseException as exc:  # noqa: BLE001 - app errors travel back
            self._reply(node.address, source, done, None, exc, span)
            return
        if hasattr(result, "send"):
            # Generator handler: it consumes further simulated time.
            handler = self.sim.process(result, name=f"handler:{node.address}")
            if self.sim.tracer is not None:
                # Re-parent the handler under its rpc span so the work it
                # spawns traces back to the request that caused it.
                self.sim.tracer.adopt(handler, span)
            handler.add_callback(
                lambda event: self._settle_from_handler(
                    node.address, source, done, event, span))
            return
        self._reply(node.address, source, done, result, None, span)

    def _settle_from_handler(self, node_address: str, source: Optional[str],
                             done: Event, handler: Event,
                             span: Optional["Span"] = None) -> None:
        if handler.ok:
            self._reply(node_address, source, done, handler.value, None, span)
        else:
            self._reply(node_address, source, done, None, handler._exception,
                        span)

    def _reply(self, node_address: str, source: Optional[str], done: Event,
               value: Any, exc: Optional[BaseException],
               span: Optional["Span"] = None) -> None:
        """Route a response back, honouring reverse-direction link faults.

        On an asymmetric partition the handler has already executed its
        side effects; the caller merely never learns the outcome.
        """
        if self.link_dropped(node_address, source):
            self.messages_dropped += 1
            if span is not None:
                span.attrs["reply_dropped"] = True
            self.sim.schedule(self.unreachable_delay, self._settle,
                              done, None, HostUnreachable(node_address), span)
            return
        self.sim.schedule(
            self.latency.sample() + self.link_delay(node_address, source),
            self._settle, done, value, exc, span)

    def _settle(self, done: Event, value: Any,
                exc: Optional[BaseException],
                span: Optional["Span"] = None) -> None:
        tracer = self.sim.tracer
        if tracer is not None and span is not None:
            tracer.end_rpc(span, exc)
        if done.triggered:
            return
        if exc is not None:
            done.fail(exc)
        else:
            done.succeed(value)


class NetworkHandle:
    """A :class:`Network` facade with a fixed caller identity.

    Components issue their RPCs through a handle so that per-link fault
    rules (partitions, asymmetric drops, delay spikes) can target traffic
    *from* that component. Everything except :meth:`call` delegates to the
    underlying network, so a handle is a drop-in replacement.
    """

    __slots__ = ("_network", "source")

    def __init__(self, network: Network, source: str) -> None:
        self._network = network
        self.source = source

    def call(self, address: str, request: Any,
             timeout: Optional[float] = None) -> Event:
        return self._network.call(address, request, timeout,
                                  source=self.source)

    def bound(self, source: str) -> "NetworkHandle":
        return NetworkHandle(self._network, source)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._network, name)
