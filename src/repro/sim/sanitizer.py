"""GeminiSan runtime side: an opt-in interleaving sanitizer for the kernel.

Every protocol bug this repo has shipped had the same shape: a process
reads shared protocol state, yields to the cooperative kernel, and then
acts on the now-stale read — a TOCTOU across a yield point. The static
rules (GEM007-GEM009, :mod:`repro.analysis.interleave`) catch the
lexical shape; :class:`SimSanitizer` catches the *dynamic* one by
tagging each inter-yield segment of every :class:`~repro.sim.core.Process`
as an atomic section and recording shared-object access footprints
through lightweight hooks in the kernel (`sim/core.py`, `sim/sync.py`)
and the data layer (`cache/instance.py`, `cache/dirtylist.py`,
`config/configuration.py`).

It reports (see ``docs/SANITIZER.md`` for the full catalogue):

* ``stale-read`` — another actor's write interleaved between a
  segment's read of a shared cell and its dependent write of the same
  cell (checked only for *paired* domains, by default ``config_id``;
  dirty-list and cache-entry footprints are recorded but check-
  suppressed because the IQ lease protocol makes those check-then-act
  windows safe by design).
* ``lock-order`` — runtime lock-acquisition-order cycles over
  ``Mutex``/``Semaphore``/Redlease, plus non-reentrant re-acquisition.
* ``lock-underflow`` — ``Semaphore.release()`` without a matching
  acquire (the kernel also raises ``SimulationError``).
* ``red-exclusion`` — a Redlease granted while a different actor holds
  an unexpired lease on the same resource (mutual exclusion broken).
* ``config-epoch`` — a committed configuration id that does not advance
  the global maximum (duplicate or regressing transition: split-brain).
* ``crashed-process`` — a process died on an exception nobody observed
  (fire-and-forget crash swallowed by the kernel).
* ``leaked-event`` / ``leaked-process`` / ``stranded-waiters`` — at a
  *drained* teardown, never-triggered events with registered callbacks,
  never-finished processes, and semaphore wait queues that can no
  longer make progress.

The sanitizer is passive: it never schedules kernel work, so a clean
run's event order — and therefore the chaos fingerprint — is identical
with and without ``--sanitize``.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, Iterator, List, Optional, Set,
                    Tuple)

from repro.errors import Interrupt

if TYPE_CHECKING:  # no runtime import: the kernel imports us for hooks
    from repro.sim.core import Event, Process, Simulator
    from repro.sim.sync import Semaphore

__all__ = ["SanitizerFinding", "SimSanitizer", "active"]

#: Actor label used for code running outside any tracked process
#: (kernel callbacks, test harness code, cluster construction).
KERNEL_ACTOR = "<kernel>"

#: Hard cap on retained findings; a broken mutant can fire thousands of
#: identical violations per trial and we only need enough to diagnose.
MAX_FINDINGS = 200

_ACTIVE: Optional["SimSanitizer"] = None


def active() -> Optional["SimSanitizer"]:
    """The installed sanitizer, or ``None`` (the hot-path hook check)."""
    return _ACTIVE


@dataclass(frozen=True)
class SanitizerFinding:
    """One runtime interleaving violation."""

    kind: str
    time: float
    actor: str
    message: str

    def __str__(self) -> str:
        return (f"[sanitizer:{self.kind}] t={self.time:.6f} "
                f"actor={self.actor}: {self.message}")


@dataclass
class _Cell:
    """Version clock for one shared cell ``(domain, key)``."""

    version: int = 0
    last_writer: str = KERNEL_ACTOR
    last_write_time: float = 0.0


@dataclass(frozen=True)
class _ReadRecord:
    version: int
    time: float
    segment: int


@dataclass
class _CrashRecord:
    process: "Process"
    label: str
    time: float
    exception: BaseException


@dataclass
class _Stats:
    """Instrumentation counters (cheap observability for SANITIZER.md)."""

    reads: int = 0
    writes: int = 0
    segments: int = 0
    lock_acquires: int = 0
    dropped_findings: int = 0
    domains: Set[str] = field(default_factory=set)


class SimSanitizer:
    """Opt-in dynamic race detector for one :class:`Simulator`.

    Usage::

        sanitizer = SimSanitizer(sim)
        sanitizer.install()
        try:
            ...  # run the workload
            findings = sanitizer.finish()
        finally:
            sanitizer.uninstall()

    ``paired_domains`` selects which footprint domains get the full
    read/write pairing check; the rest are recorded as footprints only.
    Only one sanitizer can be installed at a time (module-global hook).
    """

    def __init__(self, sim: "Simulator",
                 paired_domains: Optional[Set[str]] = None) -> None:
        self.sim = sim
        self.paired_domains: Set[str] = (
            {"config_id"} if paired_domains is None else set(paired_domains))
        self.findings: List[SanitizerFinding] = []
        self.stats = _Stats()
        self._finished = False
        # -- actor attribution ------------------------------------------
        self._actor_stack: List[str] = []
        self._proc_labels: Dict[int, str] = {}
        self._proc_seq = 0
        # per-actor atomic-section counter: bumped every time the actor
        # regains control, so a read and a write in different segments
        # are known to straddle at least one yield point.
        self._segments: Dict[str, int] = {}
        # -- shared-state footprints ------------------------------------
        self._cells: Dict[Tuple[str, str], _Cell] = {}
        self._reads: Dict[Tuple[str, str, str], _ReadRecord] = {}
        # -- locks -------------------------------------------------------
        self._lock_labels: Dict[int, str] = {}
        self._locks: List["Semaphore"] = []
        self._lock_seq = 0
        self._held: Dict[str, List[str]] = {}
        self._pending_waiters: Dict[int, str] = {}
        self._lock_edges: Dict[str, Set[str]] = {}
        self._cycles_reported: Set[frozenset[str]] = set()
        # -- red leases --------------------------------------------------
        self._red_holders: Dict[Tuple[str, str], Tuple[int, str]] = {}
        # -- configuration epochs ---------------------------------------
        self._max_config_id: Optional[int] = None
        # -- event / process registries (weak: a collected event cannot
        #    be leaked — nobody could ever trigger or observe it) -------
        self._events: List["weakref.ref[Event]"] = []
        self._procs: List["weakref.ref[Process]"] = []
        self._crashes: List[_CrashRecord] = []

    # -- lifecycle -------------------------------------------------------

    def install(self) -> None:
        global _ACTIVE
        if _ACTIVE is not None and _ACTIVE is not self:
            raise RuntimeError("another SimSanitizer is already installed")
        _ACTIVE = self
        self.sim.sanitizer = self

    def uninstall(self) -> None:
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None
        if self.sim.sanitizer is self:
            self.sim.sanitizer = None

    @property
    def ok(self) -> bool:
        return not self.findings

    def _finding(self, kind: str, message: str,
                 actor: Optional[str] = None) -> None:
        if len(self.findings) >= MAX_FINDINGS:
            self.stats.dropped_findings += 1
            return
        self.findings.append(SanitizerFinding(
            kind=kind, time=self.sim.now,
            actor=self.current_actor if actor is None else actor,
            message=message))

    # -- actor attribution ----------------------------------------------

    @property
    def current_actor(self) -> str:
        return self._actor_stack[-1] if self._actor_stack else KERNEL_ACTOR

    def _label_for(self, process: "Process") -> str:
        label = self._proc_labels.get(id(process))
        if label is None:
            # deterministic sequential numbering: never id()-derived, so
            # findings are byte-stable across runs and machines.
            self._proc_seq += 1
            name = getattr(process, "name", "") or "process"
            label = f"{name}#{self._proc_seq}"
            self._proc_labels[id(process)] = label
        return label

    def enter_process(self, process: "Process") -> None:
        label = self._label_for(process)
        self._actor_stack.append(label)
        self._segments[label] = self._segments.get(label, 0) + 1
        self.stats.segments += 1

    def exit_process(self, process: "Process") -> None:
        if self._actor_stack:
            self._actor_stack.pop()

    @contextmanager
    def acting_as(self, actor: Optional[str]) -> Iterator[None]:
        """Attribute synchronous handler work to the RPC's source actor.

        Request handlers run in kernel-callback context inside
        ``Network._serve``; without this, every footprint they record
        would be blamed on ``<kernel>`` instead of the calling session.
        """
        label = actor if actor else KERNEL_ACTOR
        self._actor_stack.append(label)
        self._segments[label] = self._segments.get(label, 0) + 1
        self.stats.segments += 1
        try:
            yield
        finally:
            self._actor_stack.pop()

    # -- shared-state footprints ----------------------------------------

    def record_read(self, domain: str, key: str) -> None:
        self.stats.reads += 1
        self.stats.domains.add(domain)
        if domain not in self.paired_domains:
            return
        cell = self._cells.get((domain, key))
        actor = self.current_actor
        self._reads[(actor, domain, key)] = _ReadRecord(
            version=0 if cell is None else cell.version,
            time=self.sim.now,
            segment=self._segments.get(actor, 0))

    def record_write(self, domain: str, key: str) -> None:
        self.stats.writes += 1
        self.stats.domains.add(domain)
        actor = self.current_actor
        cell = self._cells.setdefault((domain, key), _Cell())
        if domain in self.paired_domains:
            read = self._reads.pop((actor, domain, key), None)
            if (read is not None and cell.version != read.version
                    and cell.last_writer != actor):
                crossed = self._segments.get(actor, 0) - read.segment
                self._finding(
                    "stale-read",
                    f"{domain}[{key}]: dependent write based on a read from "
                    f"t={read.time:.6f} ({crossed} yield point(s) ago), but "
                    f"{cell.last_writer} wrote the cell at "
                    f"t={cell.last_write_time:.6f} in between")
        cell.version += 1
        cell.last_writer = actor
        cell.last_write_time = self.sim.now

    # -- locks ----------------------------------------------------------

    def _lock_label(self, lock: "Semaphore") -> str:
        label = self._lock_labels.get(id(lock))
        if label is None:
            self._lock_seq += 1
            name = getattr(lock, "name", "") or ""
            label = name or f"{type(lock).__name__.lower()}-{self._lock_seq}"
            self._lock_labels[id(lock)] = label
            self._locks.append(lock)
        return label

    def _add_lock_edge(self, held: str, wanted: str) -> None:
        edges = self._lock_edges.setdefault(held, set())
        if wanted in edges:
            return
        edges.add(wanted)
        cycle = self._find_cycle(wanted, held)
        if cycle is not None:
            key = frozenset(cycle)
            if key not in self._cycles_reported:
                self._cycles_reported.add(key)
                self._finding(
                    "lock-order",
                    "acquisition-order cycle: "
                    + " -> ".join(cycle + [cycle[0]]))

    def _find_cycle(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS ``start -> ... -> goal`` (the new edge closes the cycle)."""
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        seen: Set[str] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in sorted(self._lock_edges.get(node, ())):
                stack.append((nxt, path + [nxt]))
        return None

    def on_lock_acquire(self, lock: "Semaphore", event: "Event",
                        immediate: bool) -> None:
        self.stats.lock_acquires += 1
        label = self._lock_label(lock)
        actor = self.current_actor
        held = self._held.setdefault(actor, [])
        for held_label in held:
            if held_label == label:
                self._finding(
                    "lock-order",
                    f"{label} re-acquired while already held "
                    f"(non-reentrant: guaranteed self-deadlock under "
                    f"contention)")
            else:
                self._add_lock_edge(held_label, label)
        if immediate:
            held.append(label)
        else:
            self._pending_waiters[id(event)] = actor

    def on_lock_grant(self, lock: "Semaphore", event: "Event") -> None:
        """A queued waiter inherits the releasing holder's slot."""
        label = self._lock_label(lock)
        waiter = self._pending_waiters.pop(id(event), None)
        self._drop_held(self.current_actor, label)
        if waiter is not None:
            self._held.setdefault(waiter, []).append(label)

    def on_lock_release(self, lock: "Semaphore") -> None:
        self._drop_held(self.current_actor, self._lock_label(lock))

    def on_lock_underflow(self, lock: "Semaphore") -> None:
        self._finding(
            "lock-underflow",
            f"{self._lock_label(lock)} released without a matching acquire")

    def _drop_held(self, actor: str, label: str) -> None:
        held = self._held.get(actor)
        if held is not None and label in held:
            held.remove(label)
            return
        # released by a different frame than the acquirer (e.g. a
        # supervisor cleaning up): scan and drop the first occurrence.
        for other in self._held.values():
            if label in other:
                other.remove(label)
                return

    # -- red leases ------------------------------------------------------

    def on_red_acquire(self, address: str, resource: str, token: int,
                       holder_alive: bool) -> None:
        actor = self.current_actor
        key = (address, resource)
        if holder_alive:
            prev = self._red_holders.get(key)
            holder = prev[1] if prev is not None else "<unknown>"
            if prev is None or holder != actor:
                self._finding(
                    "red-exclusion",
                    f"Redlease on {resource!r} at {address} granted to "
                    f"{actor} while {holder} holds an unexpired lease")
        self._red_holders[key] = (token, actor)
        label = f"red:{address}:{resource}"
        held = self._held.setdefault(actor, [])
        for held_label in held:
            if held_label != label:
                self._add_lock_edge(held_label, label)
        held.append(label)

    def on_red_release(self, address: str, resource: str) -> None:
        self._red_holders.pop((address, resource), None)
        self._drop_held(self.current_actor, f"red:{address}:{resource}")

    # -- configuration epochs -------------------------------------------

    def on_config_evolve(self, old_id: int, new_id: int) -> None:
        if self._max_config_id is not None and new_id <= self._max_config_id:
            self._finding(
                "config-epoch",
                f"configuration id {new_id} (evolved from {old_id}) does "
                f"not advance the committed maximum {self._max_config_id} "
                f"— duplicate or regressing transition")
        if self._max_config_id is None or new_id > self._max_config_id:
            self._max_config_id = new_id

    # -- event / process lifecycle --------------------------------------

    def on_event_created(self, event: "Event") -> None:
        self._events.append(weakref.ref(event))

    def on_process_created(self, process: "Process") -> None:
        self._label_for(process)
        self._procs.append(weakref.ref(process))

    def on_process_crash(self, process: "Process",
                         exception: BaseException) -> None:
        self._crashes.append(_CrashRecord(
            process=process, label=self._label_for(process),
            time=self.sim.now, exception=exception))

    # -- teardown --------------------------------------------------------

    def finish(self) -> List[SanitizerFinding]:
        """Run the teardown checks and return all findings.

        Crash reporting always runs. The leak checks (never-triggered
        events with observers, never-finished processes, stranded lock
        waiters) only run when the simulator *drained* — a run stopped
        at a time horizon legitimately strands in-flight work.
        """
        if self._finished:
            return self.findings
        self._finished = True
        from repro.sim.core import Process, Timeout

        for crash in self._crashes:
            if isinstance(crash.exception, Interrupt):
                continue  # deliberate cancellation (e.g. worker.stop())
            if getattr(crash.process, "_san_observed", False):
                continue  # somebody awaited it; the error propagated
            self._finding(
                "crashed-process",
                f"died unobserved at t={crash.time:.6f}: "
                f"{type(crash.exception).__name__}: {crash.exception}",
                actor=crash.label)

        drained = not self.sim._now_queue and not self.sim._heap
        if drained:
            for proc_ref in self._procs:
                process = proc_ref()
                if process is not None and not process.triggered:
                    self._finding(
                        "leaked-process",
                        f"{self._label_for(process)} never finished and "
                        f"nothing remains scheduled to resume it",
                        actor=self._label_for(process))
            for event_ref in self._events:
                event = event_ref()
                if (event is None or event.triggered
                        or isinstance(event, (Process, Timeout))
                        or not event._callbacks
                        or id(event) in self._pending_waiters):
                    continue  # lock waiters get the stranded-waiters report
                self._finding(
                    "leaked-event",
                    f"event with {len(event._callbacks)} registered "
                    f"callback(s) can never trigger (created by "
                    f"{self._event_origin(event)})",
                    actor=KERNEL_ACTOR)
            for lock in self._locks:
                waiting = len(getattr(lock, "_waiters", ()))
                if waiting:
                    self._finding(
                        "stranded-waiters",
                        f"{self._lock_label(lock)} still has {waiting} "
                        f"queued waiter(s) with the simulator drained",
                        actor=KERNEL_ACTOR)
        return self.findings

    @staticmethod
    def _event_origin(event: "Event") -> str:
        return type(event).__name__
