"""Failure/recovery scheduling for simulated nodes.

Experiments in the paper fail instances in two ways:

* **Emulated failure** (Section 5.2): the coordinator removes an instance
  from the configuration without powering it off, so its content stays
  intact — used for all YCSB experiments. Modelled by calling coordinator
  hooks directly.
* **Real crash**: the node stops answering; persistent content survives
  but the DRAM index is rebuilt on restart. Modelled by
  :meth:`RemoteNode.fail` / :meth:`RemoteNode.recover`.

:class:`FailureSchedule` describes *when*; :class:`FailureInjector`
executes the schedule against a set of nodes and invokes observer hooks
(the coordinator's failure detector in the harness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.sim.network import RemoteNode

__all__ = ["FailureSchedule", "FailureInjector", "check_overlap"]


@dataclass(frozen=True)
class FailureSchedule:
    """One planned outage: ``targets`` go down at ``at`` for ``duration``.

    ``duration=None`` means the outage is permanent (no recovery event).
    ``emulated=True`` reproduces the paper's coordinator-driven failure:
    the node object stays up (content intact, power undisturbed) and only
    the observers are notified.
    """

    at: float
    duration: Optional[float]
    targets: Sequence[str] = field(default_factory=tuple)
    emulated: bool = True

    def __post_init__(self) -> None:
        if self.at < 0:
            raise SimulationError("failure time must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise SimulationError("failure duration must be positive")
        if not self.targets:
            raise SimulationError("a failure schedule needs targets")

    @property
    def recovers_at(self) -> Optional[float]:
        if self.duration is None:
            return None
        return self.at + self.duration


def check_overlap(schedules: Sequence[FailureSchedule]) -> None:
    """Reject schedules whose outage windows overlap on the same target.

    Two outages of the same address with intersecting ``[at, recovers_at)``
    windows would make the injector's fail/recover pairing ambiguous (the
    first recovery would "revive" a node the second outage still holds
    down). A permanent outage (``duration=None``) overlaps everything at or
    after its start.
    """
    windows: Dict[str, List[Tuple[float, Optional[float]]]] = {}
    for schedule in schedules:
        for address in schedule.targets:
            windows.setdefault(address, []).append(
                (schedule.at, schedule.recovers_at))
    for address, spans in windows.items():
        spans.sort(key=lambda s: (s[0], s[1] is not None, s[1]))
        for (a_start, a_end), (b_start, _b_end) in zip(spans, spans[1:], strict=False):
            if a_end is None or b_start < a_end:
                raise SimulationError(
                    f"overlapping outages for {address!r}: "
                    f"[{a_start}, {a_end}) and one starting at {b_start}"
                )


class FailureInjector:
    """Executes :class:`FailureSchedule` entries against named nodes.

    Observers are ``(event, address)`` callbacks with ``event`` in
    ``{"fail", "recover"}`` — the harness registers the coordinator's
    failure detector here so that mode transitions happen exactly when the
    paper's emulated failures do.
    """

    def __init__(self, sim: Simulator,
                 nodes: Optional[Dict[str, RemoteNode]] = None) -> None:
        self.sim = sim
        self._nodes: Dict[str, RemoteNode] = dict(nodes or {})
        self._observers: List[Callable[[str, str], None]] = []
        self.log: List[Tuple[float, str, str]] = []
        self._down: Set[str] = set()

    def add_node(self, address: str, node: RemoteNode) -> None:
        self._nodes[address] = node

    def subscribe(self, observer: Callable[[str, str], None]) -> None:
        self._observers.append(observer)

    def is_down(self, address: str) -> bool:
        return address in self._down

    def apply(self, schedule: FailureSchedule) -> None:
        """Arm one outage; fail/recover callbacks fire at the right times."""
        for address in schedule.targets:
            self.sim.schedule_at(schedule.at, self._fail, address, schedule.emulated)
            if schedule.recovers_at is not None:
                self.sim.schedule_at(
                    schedule.recovers_at, self._recover, address, schedule.emulated
                )

    def apply_all(self, schedules: Sequence[FailureSchedule],
                  allow_overlap: bool = False) -> None:
        if not allow_overlap:
            check_overlap(schedules)
        for schedule in schedules:
            self.apply(schedule)

    def fail_now(self, address: str, emulated: bool = True) -> None:
        self._fail(address, emulated)

    def recover_now(self, address: str, emulated: bool = True) -> None:
        self._recover(address, emulated)

    def _fail(self, address: str, emulated: bool) -> None:
        if address in self._down:
            # Already down: a second fail must not re-notify observers (the
            # coordinator would start a second transient episode).
            self.log.append((self.sim.now, "fail-redundant", address))
            return
        self._down.add(address)
        self.log.append((self.sim.now, "fail", address))
        node = self._nodes.get(address)
        if node is not None and not emulated:
            node.fail()
        for observer in self._observers:
            observer("fail", address)

    def _recover(self, address: str, emulated: bool) -> None:
        if address not in self._down:
            self.log.append((self.sim.now, "recover-redundant", address))
            return
        self._down.discard(address)
        self.log.append((self.sim.now, "recover", address))
        node = self._nodes.get(address)
        if node is not None and not emulated:
            node.recover()
        for observer in self._observers:
            observer("recover", address)
