"""Synchronization primitives for simulation processes.

The coordinator serializes configuration transitions (a failure landing
while a recovery transition is mid-RPC must wait), and open-loop workload
replay bounds its in-flight sessions. Both need classic async primitives,
implemented here against the DES kernel.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator

__all__ = ["Mutex", "Semaphore"]


class Semaphore:
    """Counting semaphore with FIFO wakeup.

    Usage inside a process::

        yield semaphore.acquire()
        try:
            ...
        finally:
            semaphore.release()

    A ``release()`` without a matching held acquire raises
    :class:`~repro.errors.SimulationError` — even while waiters are
    queued. The pre-guard code silently handed the phantom slot to the
    first waiter, corrupting the effective capacity and masking the
    double-release bug that caused it.

    ``name`` is only used for diagnostics (sanitizer lock labels).
    """

    def __init__(self, sim: Simulator, capacity: int = 1,
                 name: str = "") -> None:
        if capacity < 1:
            raise SimulationError("semaphore capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._available = capacity
        #: Slots actually held (immediate grants plus waiter handoffs
        #: minus releases); the underflow guard keys off this, not
        #: ``_available``, so it stays correct while waiters queue.
        self._held = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self._available

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Returns an event that succeeds once a slot is held."""
        event = self.sim.event()
        if self._available > 0:
            self._available -= 1
            self._held += 1
            event.succeed()
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.on_lock_acquire(self, event,
                                                   immediate=True)
        else:
            self._waiters.append(event)
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.on_lock_acquire(self, event,
                                                   immediate=False)
        return event

    def release(self) -> None:
        if self._held == 0:
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.on_lock_underflow(self)
            raise SimulationError("semaphore released more than acquired")
        if self._waiters:
            # Hand the slot straight to the next waiter: _held is
            # unchanged because ownership transfers, not returns.
            waiter = self._waiters.popleft()
            waiter.succeed()
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.on_lock_grant(self, waiter)
        else:
            self._held -= 1
            self._available += 1
            if self.sim.sanitizer is not None:
                self.sim.sanitizer.on_lock_release(self)


class Mutex(Semaphore):
    """A binary semaphore."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        super().__init__(sim, capacity=1, name=name)
