"""Synchronization primitives for simulation processes.

The coordinator serializes configuration transitions (a failure landing
while a recovery transition is mid-RPC must wait), and open-loop workload
replay bounds its in-flight sessions. Both need classic async primitives,
implemented here against the DES kernel.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator

__all__ = ["Mutex", "Semaphore"]


class Semaphore:
    """Counting semaphore with FIFO wakeup.

    Usage inside a process::

        yield semaphore.acquire()
        try:
            ...
        finally:
            semaphore.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("semaphore capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self._available

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Returns an event that succeeds once a slot is held."""
        event = self.sim.event()
        if self._available > 0:
            self._available -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            if self._available >= self.capacity:
                raise SimulationError("semaphore released more than acquired")
            self._available += 1


class Mutex(Semaphore):
    """A binary semaphore."""

    def __init__(self, sim: Simulator) -> None:
        super().__init__(sim, capacity=1)
