"""Backing data store substrate (the paper's MongoDB)."""

from repro.datastore.store import DataStore, DataStoreOp

__all__ = ["DataStore", "DataStoreOp"]
