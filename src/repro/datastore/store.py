"""A versioned key-value data store with bounded service capacity.

Stands in for the paper's MongoDB server. Two properties matter for
reproducing the evaluation:

1. **Queries are much slower than cache hits.** Defaults: ~1 ms service
   time per read, ~1.2 ms per write, versus ~5 µs at a cache instance.
   This ratio is what makes VolatileCache take hundreds of (simulated)
   seconds to re-warm while Gemini takes seconds.
2. **Capacity is bounded.** A single station with a limited number of
   servers means a miss storm (20 recovered-but-empty instances) queues
   up, and a *high* offered load re-warms the cache faster in absolute
   terms but hurts foreground latency — both effects visible in
   Figures 8–9.

Every committed write increments the key's version; the consistency
oracle subscribes to commits to later judge read staleness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import CacheError
from repro.runtime import Kernel
from repro.sim.network import RemoteNode
from repro.types import Value

__all__ = ["DataStore", "DataStoreOp"]


@dataclass
class DataStoreOp:
    """One request to the data store: ``op`` is "read" or "write"."""

    op: str
    key: str
    size: Optional[int] = None


class DataStore(RemoteNode):
    """Versioned KV store; versions start at 1 once a record exists."""

    def __init__(self, sim: Kernel, address: str = "datastore",
                 read_service_time: float = 1e-3,
                 write_service_time: float = 1.2e-3,
                 servers: int = 32,
                 default_record_size: int = 1024):
        super().__init__(sim, address, servers=servers)
        self.read_service_time = read_service_time
        self.write_service_time = write_service_time
        self.default_record_size = default_record_size
        self._versions: Dict[str, int] = {}
        self._sizes: Dict[str, int] = {}
        self.reads = 0
        self.writes = 0
        self._commit_listeners: List[Callable[[str, int, float], None]] = []

    # ------------------------------------------------------------------
    def populate(self, keys, size_of: Optional[Callable[[str], int]] = None) -> None:
        """Bulk-load records at version 1 (experiment setup; no sim time)."""
        for key in keys:
            self._versions[key] = 1
            if size_of is not None:
                self._sizes[key] = size_of(key)

    def subscribe_commits(self, listener: Callable[[str, int, float], None]) -> None:
        """``listener(key, version, commit_time)`` on every committed write."""
        self._commit_listeners.append(listener)

    def version(self, key: str) -> int:
        """Current committed version (0 = record does not exist)."""
        return self._versions.get(key, 0)

    def record_size(self, key: str) -> int:
        return self._sizes.get(key, self.default_record_size)

    def __len__(self) -> int:
        return len(self._versions)

    # ------------------------------------------------------------------
    def service_time(self, request: DataStoreOp) -> float:
        if request.op == "write":
            return self.write_service_time
        return self.read_service_time

    def handle_request(self, request: DataStoreOp) -> Value:
        if request.op == "read":
            return self._read(request.key)
        if request.op == "write":
            return self._write(request.key, request.size)
        raise CacheError(f"unknown data store op {request.op!r}")

    def _read(self, key: str) -> Value:
        self.reads += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.annotate(store_op="read",
                            version=self._versions.get(key, 0))
        return Value(version=self._versions.get(key, 0),
                     size=self.record_size(key))

    def _write(self, key: str, size: Optional[int]) -> Value:
        self.writes += 1
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.annotate(store_op="write", version=version)
        if size is not None:
            self._sizes[key] = size
        now = self.sim.now
        for listener in self._commit_listeners:
            listener(key, version, now)
        return Value(version=version, size=self.record_size(key))
