"""Client-side configuration cache and routing.

A Gemini client holds the latest configuration it knows of and maps every
key to a fragment cell with the deterministic hash (Figure 3). The cache
is updated from three sources: coordinator pushes (subscription), refresh
RPCs after a :class:`~repro.errors.StaleConfiguration` bounce, and the
bootstrap fetch.
"""

from __future__ import annotations

from typing import Optional

from repro.config.configuration import Configuration, FragmentInfo
from repro.errors import FragmentUnavailable

__all__ = ["ConfigCache"]


class ConfigCache:
    """The client's view of the cluster."""

    def __init__(self, config: Optional[Configuration] = None) -> None:
        self._config = config
        self.updates = 0

    @property
    def config(self) -> Configuration:
        if self._config is None:
            raise FragmentUnavailable(-1, "client has no configuration yet")
        return self._config

    @property
    def config_id(self) -> int:
        return self.config.config_id

    @property
    def ready(self) -> bool:
        return self._config is not None

    def adopt(self, config: Configuration) -> bool:
        """Install a configuration if it is newer; returns True if adopted."""
        if config is None:
            return False
        if self._config is not None and config.config_id <= self._config.config_id:
            return False
        self._config = config
        self.updates += 1
        return True

    def route(self, key: str) -> FragmentInfo:
        """Map a key to its fragment cell."""
        return self.config.fragment_for_key(key)
