"""The Gemini client library (Section 2, Algorithms 1 and 2).

The client caches a configuration, routes keys to fragments, and runs the
mode-dependent read/write session protocols, including dirty-list
consultation and working-set transfer during recovery mode.
"""

from repro.client.client import GeminiClient
from repro.client.routing import ConfigCache
from repro.client.working_set import WstTracker

__all__ = ["ConfigCache", "GeminiClient", "WstTracker"]
