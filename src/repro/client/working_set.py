"""Client-side working-set-transfer accounting.

During recovery mode with +W policies, every primary miss triggers a
secondary lookup (Section 3.2.2). The tracker counts those lookups per
recovering instance; the coordinator's termination monitor reads them to
evaluate the m threshold (secondary miss ratio), standing in for the
client->coordinator feedback channel of a real deployment.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["WstTracker"]


class WstTracker:
    """hits/misses of secondary lookups, keyed by recovering primary."""

    def __init__(self) -> None:
        self._counts: Dict[str, Dict[str, int]] = {}

    def observe(self, primary: str, hit: bool) -> None:
        counts = self._counts.get(primary)
        if counts is None:
            counts = self._counts[primary] = {"hits": 0, "misses": 0}
        counts["hits" if hit else "misses"] += 1

    def counts(self, primary: str) -> Dict[str, int]:
        return dict(self._counts.get(primary, {"hits": 0, "misses": 0}))

    def merged(self, others: "list[WstTracker]", primary: str) -> Dict[str, int]:
        """Aggregate this tracker with others for one primary."""
        total = {"hits": 0, "misses": 0}
        for tracker in [self, *others]:
            counts = tracker.counts(primary)
            total["hits"] += counts["hits"]
            total["misses"] += counts["misses"]
        return total
