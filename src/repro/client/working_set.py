"""Client-side working-set-transfer accounting.

During recovery mode with +W policies, every primary miss triggers a
secondary lookup (Section 3.2.2). The tracker counts those lookups per
recovering instance; the coordinator's termination monitor reads them to
evaluate the m threshold (secondary miss ratio), standing in for the
client->coordinator feedback channel of a real deployment.

Counts are namespaced by *episode* — the cfg_id the coordinator stamped
when the fragment entered transient mode. A primary can fail, recover,
and fail again; the m-threshold decision for the second outage must
start from zero, not consume secondary-lookup counts left over from the
first. Keying by (primary, episode) makes stale episodes invisible to
the monitor without any reset protocol.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["WstTracker"]

_ZERO = {"hits": 0, "misses": 0}


class WstTracker:
    """hits/misses of secondary lookups, keyed by (primary, episode)."""

    def __init__(self) -> None:
        self._counts: Dict[Tuple[str, int], Dict[str, int]] = {}

    def observe(self, primary: str, episode: int, hit: bool) -> None:
        key = (primary, episode)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = {"hits": 0, "misses": 0}
        counts["hits" if hit else "misses"] += 1

    def counts(self, primary: str, episode: int) -> Dict[str, int]:
        return dict(self._counts.get((primary, episode), _ZERO))

    def totals(self, primary: str) -> Dict[str, int]:
        """Counts summed over every episode of one primary — reporting
        only; the termination monitor must use :meth:`counts`."""
        total = {"hits": 0, "misses": 0}
        for (who, _episode), counts in self._counts.items():
            if who == primary:
                total["hits"] += counts["hits"]
                total["misses"] += counts["misses"]
        return total

    def episodes(self, primary: str) -> List[int]:
        """Episodes with at least one observed lookup for `primary`."""
        return sorted(ep for (who, ep) in self._counts if who == primary)

    def merged(self, others: "List[WstTracker]", primary: str,
               episode: int) -> Dict[str, int]:
        """Aggregate this tracker with others for one outage episode."""
        total = {"hits": 0, "misses": 0}
        for tracker in [self, *others]:
            counts = tracker.counts(primary, episode)
            total["hits"] += counts["hits"]
            total["misses"] += counts["misses"]
        return total
