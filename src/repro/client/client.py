"""The Gemini client (Algorithms 1 and 2 plus the failure handling of
Sections 2.2 and 3.3).

Every public operation is a *session*: an atomic unit that reads or
writes one cache entry and issues at most one data-store transaction.
Sessions are generators driven by the simulation kernel; they retry on
lease back-off, refresh their configuration on
:class:`~repro.errors.StaleConfiguration` bounces, and fall back to the
data store (reads) or suspend (writes) while a fragment has no reachable
serving replica.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Set

from repro.cache.instance import CacheOp
from repro.client.routing import ConfigCache
from repro.client.working_set import WstTracker
from repro.coordinator.coordinator import CoordinatorOp
from repro.errors import (
    FragmentUnavailable,
    InstanceDown,
    LeaseBackoff,
    NetworkError,
    ReproError,
    StaleConfiguration,
)
from repro.config.configuration import Configuration, FragmentInfo
from repro.metrics.recorder import OpRecorder
from repro.recovery.policies import RecoveryPolicy
from repro.runtime import Kernel, Transport
from repro.sim.core import SimGenerator
from repro.sim.rng import fallback_stream
from repro.types import CACHE_MISS, FragmentMode, Value
from repro.verify.events import EventLog
from repro.verify.oracle import ConsistencyOracle

__all__ = ["GeminiClient"]

#: Errors meaning "the node I talked to is not answering".
_UNREACHABLE = (NetworkError, InstanceDown)


class GeminiClient:
    """One application-side Gemini client library instance."""

    MAX_ATTEMPTS = 200

    def __init__(self, sim: Kernel, network: Transport,
                 policy: RecoveryPolicy,
                 coordinator_address: str = "coordinator",
                 datastore_address: str = "datastore",
                 name: str = "client",
                 oracle: Optional[ConsistencyOracle] = None,
                 recorder: Optional[OpRecorder] = None,
                 rng: Optional[random.Random] = None,
                 backoff_base: float = 0.001,
                 backoff_cap: float = 0.016,
                 suspension_delay: float = 0.02,
                 event_log: Optional[EventLog] = None) -> None:
        self.sim = sim
        #: Optional structured protocol-event stream (verify.events).
        self.event_log = event_log
        # Bound handle: this client's RPCs are attributable for link-fault
        # rules (partitions between one client and one instance, etc.).
        self.network = network.bound(name)
        self.policy = policy
        self.coordinator_address = coordinator_address
        self.datastore_address = datastore_address
        self.name = name
        self.oracle = oracle
        self.recorder = recorder
        self.rng = fallback_stream(rng, f"client.{name}")
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.suspension_delay = suspension_delay
        self.cache = ConfigCache()
        self.wst = WstTracker()
        #: Local dirty-list copies per fragment in recovery mode.
        self._dirty: Dict[int, Set[str]] = {}
        self.reads_completed = 0
        self.writes_completed = 0

    # ------------------------------------------------------------------
    # Configuration plumbing
    # ------------------------------------------------------------------
    def _adopt(self, config: Configuration) -> bool:
        """Adopt a configuration if strictly newer; emit the observation."""
        if not self.cache.adopt(config):
            return False
        if self.event_log is not None:
            self.event_log.emit("config_observed", actor=self.name,
                                config_id=config.config_id)
        return True

    def on_config(self, config: Configuration) -> None:
        """Coordinator push (subscribe this method on the coordinator)."""
        if not self._adopt(config):
            return
        # Drop dirty copies of fragments that left recovery mode.
        for fragment in config.fragments:
            if (fragment.fragment_id in self._dirty
                    and fragment.mode is not FragmentMode.RECOVERY):
                del self._dirty[fragment.fragment_id]

    def bootstrap(self) -> SimGenerator:
        """Fetch the initial configuration (a process to yield from)."""
        config = yield self.network.call(
            self.coordinator_address, CoordinatorOp(op="get_config"))
        self._adopt(config)
        return config

    def _refresh_config(self) -> SimGenerator:
        if self.recorder is not None:
            self.recorder.record_config_refresh()
        try:
            config = yield self.network.call(
                self.coordinator_address, CoordinatorOp(op="get_config"))
        except _UNREACHABLE:
            return
        self._adopt(config)

    # ------------------------------------------------------------------
    # RPC helpers
    # ------------------------------------------------------------------
    def _op(self, op: str, cfg_id: int, **fields: Any) -> CacheOp:
        """Build a cache op stamped with the *session's* configuration id.

        The id is captured when the session routes (Rejig, Section 4): a
        session that straddles a configuration change keeps stamping the
        id its routing decision was based on, so the first op that
        reaches an instance which already adopted a newer configuration
        bounces with StaleConfiguration and the session retries under
        the new routing. Stamping the client's *current* id instead
        would let a session that started in transient mode complete
        against the secondary after the fragment moved to recovery mode
        — its quarantine then never reaches the primary's lease table,
        and a concurrent recovery-mode reader can resurrect the
        pre-write value into the primary (a read-after-write violation).
        """
        return CacheOp(op=op, client_cfg_id=cfg_id, **fields)

    @staticmethod
    def _suspect(fragment: FragmentInfo) -> Optional[str]:
        """Which replica to report after an unreachable error."""
        try:
            return fragment.serving_replica()
        except FragmentUnavailable:
            return None

    def _backoff_delay(self, attempt: int) -> float:
        cap = min(self.backoff_cap, self.backoff_base * (2 ** min(attempt, 6)))
        return cap * (0.5 + 0.5 * self.rng.random())

    def _store_read(self, key: str) -> SimGenerator:
        from repro.datastore.store import DataStoreOp
        value = yield self.network.call(
            self.datastore_address, DataStoreOp(op="read", key=key))
        return value

    def _store_write(self, key: str, size: Optional[int]) -> SimGenerator:
        from repro.datastore.store import DataStoreOp
        value = yield self.network.call(
            self.datastore_address, DataStoreOp(op="write", key=key, size=size))
        return value

    def _report_failure(self, address: str) -> SimGenerator:
        try:
            yield self.network.call(
                self.coordinator_address,
                CoordinatorOp(op="report_failure", address=address))
        except _UNREACHABLE:
            pass

    def _notify_dirty_lost(self, fragment_id: int) -> None:
        self.sim.process(
            self._notify_dirty_lost_proc(fragment_id),
            name=f"{self.name}:dirty-lost")

    def _notify_dirty_lost_proc(self, fragment_id: int) -> SimGenerator:
        try:
            yield self.network.call(
                self.coordinator_address,
                CoordinatorOp(op="dirty_lost", fragment_id=fragment_id))
        except _UNREACHABLE:
            pass

    @staticmethod
    def _end_attempt(tracer: Any, span: Any, status: str, started: float,
                     attempt: int, fragment: Any, cfg: int) -> None:
        """Close a bounced attempt's span, materializing it if lazy.

        First attempts are not traced eagerly — the clean single-attempt
        session (the overwhelming majority of traffic) would pay span
        churn for nothing the session span doesn't already carry. A
        first attempt that bounces is recorded retroactively over its
        ``[started, now]`` interval instead, so every retry is still
        classified.
        """
        if span is not None:
            tracer.end(span, status=status)
        else:
            tracer.closed("attempt", kind="attempt", start=started,
                          status=status, seq=attempt,
                          fragment_id=fragment.fragment_id,
                          mode=fragment.mode.name, config_id=cfg)

    # ------------------------------------------------------------------
    # Public sessions
    # ------------------------------------------------------------------
    def read(self, key: str) -> SimGenerator:
        """Read session. Returns the :class:`Value` observed."""
        start = self.sim.now
        value: Optional[Value] = None
        hit = False
        instance: Optional[str] = None
        store_direct = False
        unreachable_strikes = 0
        attempts = 0
        tracer = self.sim.tracer
        span = (tracer.begin("read", kind="session", client=self.name,
                             key=key) if tracer is not None else None)
        attempt_span = None
        try:
            for attempt in range(1, self.MAX_ATTEMPTS + 1):
                attempts = attempt
                fragment = self.cache.route(key)
                cfg = self.cache.config_id
                if tracer is not None:
                    # First attempts are traced lazily (see _end_attempt):
                    # the clean single-attempt session — the overwhelming
                    # majority — pays no span churn.
                    attempt_started = self.sim.now
                    if attempt > 1:
                        attempt_span = tracer.begin(
                            "attempt", kind="attempt", seq=attempt,
                            fragment_id=fragment.fragment_id,
                            mode=fragment.mode.name, config_id=cfg)
                try:
                    value, hit, instance = yield from self._read_once(
                        fragment, key, cfg)
                    if attempt_span is not None:
                        tracer.end(attempt_span)
                    break
                except LeaseBackoff:
                    if tracer is not None:
                        self._end_attempt(tracer, attempt_span,
                                          "lease-backoff", attempt_started,
                                          attempt, fragment, cfg)
                        attempt_span = None
                    if self.recorder is not None:
                        self.recorder.record_backoff()
                    yield self._backoff_delay(attempt)
                except StaleConfiguration:
                    if tracer is not None:
                        self._end_attempt(tracer, attempt_span,
                                          "stale-config", attempt_started,
                                          attempt, fragment, cfg)
                        attempt_span = None
                    yield from self._refresh_config()
                except FragmentUnavailable:
                    if tracer is not None:
                        self._end_attempt(tracer, attempt_span,
                                          "unavailable", attempt_started,
                                          attempt, fragment, cfg)
                        attempt_span = None
                    yield self.suspension_delay
                    yield from self._refresh_config()
                except _UNREACHABLE:
                    if tracer is not None:
                        self._end_attempt(tracer, attempt_span,
                                          "unreachable", attempt_started,
                                          attempt, fragment, cfg)
                        attempt_span = None
                    unreachable_strikes += 1
                    suspect = self._suspect(fragment)
                    if suspect is not None:
                        yield from self._report_failure(suspect)
                    yield from self._refresh_config()
                    if unreachable_strikes >= 2:
                        # Section 2.2: while the fragment has no serving
                        # replica, reads are processed using the data store.
                        value = yield from self._store_read(key)
                        store_direct = True
                        break
                    yield self.suspension_delay
        finally:
            if tracer is not None:
                # Idempotent closes: an unexpected exception mid-attempt
                # must not leave the session parented on this process's
                # context stack (later sessions would mis-parent there).
                if attempt_span is not None:
                    tracer.end(attempt_span, status="error")
                tracer.end(span,
                           status="ok" if value is not None else "error",
                           attempts=attempts, hit=hit,
                           store_direct=store_direct)
        if value is None:
            raise ReproError(f"read of {key!r} exhausted retries")
        end = self.sim.now
        self.reads_completed += 1
        if self.recorder is not None:
            self.recorder.record_read(start, end, hit, instance,
                                      store_direct=store_direct)
        if self.oracle is not None:
            self.oracle.record_read(key, value.version, start, end)
        return value

    def write(self, key: str, size: Optional[int] = None) -> SimGenerator:
        """Write-around write session. Returns the committed Value."""
        start = self.sim.now
        # Mutable so that store progress survives a bounced attempt: a
        # StaleConfiguration after the data-store transaction must not
        # make the retry issue a second transaction (sessions owe the
        # store at most one).
        session = {"store_done": False, "value": None}
        value: Optional[Value] = None
        suspended = 0.0
        attempts = 0
        tracer = self.sim.tracer
        span = (tracer.begin("write", kind="session", client=self.name,
                             key=key) if tracer is not None else None)
        attempt_span = None
        try:
            for attempt in range(1, self.MAX_ATTEMPTS + 1):
                attempts = attempt
                fragment = self.cache.route(key)
                cfg = self.cache.config_id
                if tracer is not None:
                    # Lazy first attempts — same rationale as read().
                    attempt_started = self.sim.now
                    if attempt > 1:
                        attempt_span = tracer.begin(
                            "attempt", kind="attempt", seq=attempt,
                            fragment_id=fragment.fragment_id,
                            mode=fragment.mode.name, config_id=cfg)
                try:
                    yield from self._write_once(fragment, key, cfg, size,
                                                session)
                    value = session["value"]
                    if attempt_span is not None:
                        tracer.end(attempt_span)
                    break
                except LeaseBackoff:
                    if tracer is not None:
                        self._end_attempt(tracer, attempt_span,
                                          "lease-backoff", attempt_started,
                                          attempt, fragment, cfg)
                        attempt_span = None
                    if self.recorder is not None:
                        self.recorder.record_backoff()
                    yield self._backoff_delay(attempt)
                except StaleConfiguration:
                    if tracer is not None:
                        self._end_attempt(tracer, attempt_span,
                                          "stale-config", attempt_started,
                                          attempt, fragment, cfg)
                        attempt_span = None
                    yield from self._refresh_config()
                except FragmentUnavailable:
                    # Section 2.2: writes are suspended until a secondary
                    # is published.
                    if tracer is not None:
                        self._end_attempt(tracer, attempt_span,
                                          "unavailable", attempt_started,
                                          attempt, fragment, cfg)
                        attempt_span = None
                    suspended += self.suspension_delay
                    yield self.suspension_delay
                    yield from self._refresh_config()
                except _UNREACHABLE:
                    if tracer is not None:
                        self._end_attempt(tracer, attempt_span,
                                          "unreachable", attempt_started,
                                          attempt, fragment, cfg)
                        attempt_span = None
                    suspended += self.suspension_delay
                    suspect = self._suspect(fragment)
                    if suspect is not None:
                        yield from self._report_failure(suspect)
                    yield self.suspension_delay
                    yield from self._refresh_config()
        finally:
            if tracer is not None:
                if attempt_span is not None:
                    tracer.end(attempt_span, status="error")
                tracer.end(span,
                           status="ok" if value is not None else "error",
                           attempts=attempts, suspended_for=suspended)
        if value is None:
            raise ReproError(f"write of {key!r} exhausted retries")
        end = self.sim.now
        self.writes_completed += 1
        if self.recorder is not None:
            self.recorder.record_write(start, end, suspended_for=suspended)
        if self.oracle is not None:
            # The write is confirmed *now*: read-after-write consistency
            # is owed to every read that starts after this point.
            self.oracle.record_commit(key, value.version, end)
        return value

    # ------------------------------------------------------------------
    # Read paths
    # ------------------------------------------------------------------
    def _read_once(self, fragment: FragmentInfo, key: str, cfg: int) -> SimGenerator:
        if fragment.mode is FragmentMode.RECOVERY:
            return (yield from self._read_recovery(fragment, key, cfg))
        target = fragment.serving_replica()
        return (yield from self._read_via(target, fragment, key, cfg))

    def _read_via(self, target: str, fragment: FragmentInfo, key: str, cfg: int) -> SimGenerator:
        """Normal/transient read: iqget, fill on miss (IQ protocol)."""
        outcome = yield self.network.call(
            target, self._op("iqget", cfg, key=key,
                             fragment_cfg_id=fragment.cfg_id))
        if outcome[0] == "hit":
            return outcome[1], True, target
        token = outcome[1]
        value = yield from self._store_read(key)
        yield from self._fill(target, fragment, key, cfg, value, token)
        return value, False, target

    def _fill(self, target: str, fragment, key: str, cfg: int, value: Value,
              token: int):
        """Best-effort iqset: the value is already in hand, so a failed or
        bounced fill only costs a future cache miss."""
        try:
            yield self.network.call(
                target, self._op("iqset", cfg, key=key, value=value,
                                 token=token,
                                 fragment_cfg_id=fragment.cfg_id))
        except (StaleConfiguration, *_UNREACHABLE):
            pass

    def _read_recovery(self, fragment, key: str, cfg: int):
        """Algorithm 1: reads against a fragment in recovery mode."""
        dirty = yield from self._ensure_dirty(fragment, cfg)
        primary = fragment.primary
        if key in dirty:
            # Claim-and-delete the dirty key. On LeaseBackoff the key
            # deliberately STAYS in our dirty view: the lease holder may
            # be a writer's qareg, and a Q lease deletes the stale
            # primary copy only at dar time -- or never, if that write
            # bounces on a configuration change and the lease merely
            # expires. Dropping the key here lets the retry read the
            # pre-outage copy through the iqget path below. Worst case
            # of keeping it: one redundant delete-and-refill after a
            # peer already repaired the key.
            token = yield self.network.call(
                primary, self._op("iset", cfg, key=key,
                                  fragment_cfg_id=fragment.cfg_id))
            dirty.discard(key)
        else:
            outcome = yield self.network.call(
                primary, self._op("iqget", cfg, key=key,
                                  fragment_cfg_id=fragment.cfg_id))
            if outcome[0] == "hit":
                return outcome[1], True, primary
            token = outcome[1]
        # Cache miss in the primary while holding an I lease.
        if fragment.wst_active and fragment.secondary is not None:
            try:
                found = yield self.network.call(
                    fragment.secondary,
                    self._op("get", cfg, key=key,
                             fragment_cfg_id=fragment.cfg_id))
            except (StaleConfiguration, *_UNREACHABLE):
                found = CACHE_MISS
            self.wst.observe(primary, fragment.episode,
                             found is not CACHE_MISS)
            if found is not CACHE_MISS:
                yield from self._fill(primary, fragment, key, cfg, found,
                                      token)
                return found, True, primary
        value = yield from self._store_read(key)
        yield from self._fill(primary, fragment, key, cfg, value, token)
        return value, False, primary

    def _ensure_dirty(self, fragment, cfg: int) -> Any:
        """Fetch (once) the dirty list for a recovery-mode fragment.

        Falls back to the coordinator's copy when the secondary lost it
        (eviction or crash, Section 3.3)."""
        cached = self._dirty.get(fragment.fragment_id)
        if cached is not None:
            return cached
        dirty_value = CACHE_MISS
        if fragment.secondary is not None:
            try:
                dirty_value = yield self.network.call(
                    fragment.secondary,
                    self._op("get_dirty", cfg,
                             fragment_id=fragment.fragment_id))
            except (StaleConfiguration, *_UNREACHABLE):
                dirty_value = CACHE_MISS
        if dirty_value is not CACHE_MISS and dirty_value.complete:
            keys = set(dirty_value.keys())
        else:
            try:
                copy = yield self.network.call(
                    self.coordinator_address,
                    CoordinatorOp(op="get_dirty_copy",
                                  fragment_id=fragment.fragment_id))
            except _UNREACHABLE:
                copy = []
            keys = set(copy)
        self._dirty[fragment.fragment_id] = keys
        return keys

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------
    def _write_once(self, fragment, key: str, cfg: int, size: Optional[int],
                    session: Dict[str, Any]):
        if fragment.mode is FragmentMode.NORMAL:
            yield from self._write_normal(fragment, key, cfg, size, session)
        elif fragment.mode is FragmentMode.TRANSIENT:
            yield from self._write_transient(fragment, key, cfg, size, session)
        else:
            yield from self._write_recovery(fragment, key, cfg, size, session)

    def _store_once(self, key: str, size: Optional[int],
                    session: Dict[str, Any]):
        """Issue the session's single data-store transaction (idempotent
        across retries — progress is recorded in ``session`` so a bounce
        *after* the transaction cannot re-issue it)."""
        if not session["store_done"]:
            session["value"] = yield from self._store_write(key, size)
            session["store_done"] = True

    def _write_normal(self, fragment, key, cfg, size, session):
        target = fragment.primary
        token = yield self.network.call(
            target, self._op("qareg", cfg, key=key,
                             fragment_cfg_id=fragment.cfg_id))
        yield from self._store_once(key, size, session)
        yield self.network.call(
            target, self._op("dar", cfg, key=key, token=token,
                             fragment_cfg_id=fragment.cfg_id))

    def _write_transient(self, fragment, key, cfg, size, session):
        """Transient mode (Section 3.1): write to the secondary and log
        the key in the fragment's dirty list before touching the store."""
        target = fragment.secondary
        if target is None:
            raise FragmentUnavailable(fragment.fragment_id)
        token = yield self.network.call(
            target, self._op("qareg", cfg, key=key,
                             fragment_cfg_id=fragment.cfg_id))
        if self.policy.maintain_dirty:
            complete = yield self.network.call(
                target, self._op("append_dirty", cfg,
                                 fragment_id=fragment.fragment_id, key=key))
            if self.event_log is not None:
                self.event_log.emit(
                    "transient_write", actor=self.name, address=target,
                    fragment_id=fragment.fragment_id,
                    episode=fragment.cfg_id, key=key, complete=complete)
            if not complete:
                # The marker is gone: the list was evicted and recreated.
                self._notify_dirty_lost(fragment.fragment_id)
        yield from self._store_once(key, size, session)
        yield self.network.call(
            target, self._op("dar", cfg, key=key, token=token,
                             fragment_cfg_id=fragment.cfg_id))

    def _write_recovery(self, fragment, key, cfg, size, session):
        """Algorithm 2 + Section 3.2.1: delete in BOTH replicas."""
        primary = fragment.primary
        token = yield self.network.call(
            primary, self._op("qareg", cfg, key=key,
                              fragment_cfg_id=fragment.cfg_id))
        if fragment.secondary is not None:
            try:
                yield self.network.call(
                    fragment.secondary,
                    self._op("delete", cfg, key=key,
                             fragment_cfg_id=fragment.cfg_id))
            except _UNREACHABLE:
                pass  # a dead secondary no longer serves reads
            # A StaleConfiguration bounce must propagate: the secondary is
            # still a repair source, and leaving a stale copy there lets a
            # recovery worker resurrect it into the primary. The session
            # retries the whole invalidation under the fresh configuration.
        yield from self._store_once(key, size, session)
        yield self.network.call(
            primary, self._op("dar", cfg, key=key, token=token,
                              fragment_cfg_id=fragment.cfg_id))
        # This write repaired the key; drop it from our dirty view.
        local = self._dirty.get(fragment.fragment_id)
        if local is not None:
            local.discard(key)
