"""Gemini: a distributed crash recovery protocol for persistent caches.

Reproduction of Ghandeharizadeh & Huang, Middleware '18. The public API
re-exports the pieces a downstream user needs:

* build a simulated cluster — :class:`ClusterSpec`, :class:`GeminiCluster`;
* choose a recovery policy — ``GEMINI_I``, ``GEMINI_O``, ``GEMINI_I_W``,
  ``GEMINI_O_W``, ``STALE_CACHE``, ``VOLATILE_CACHE``;
* drive load — :mod:`repro.workload`;
* run experiments — :class:`Experiment`, :class:`FailureSchedule`;
* check consistency — :class:`ConsistencyOracle`.

Quickstart::

    from repro import ClusterSpec, Experiment, GeminiCluster, GEMINI_O_W
    from repro.sim.failures import FailureSchedule
    from repro.workload import WORKLOAD_B, ClosedLoopThread, YcsbWorkload

    spec = ClusterSpec(num_instances=5, policy=GEMINI_O_W)
    cluster = GeminiCluster(spec)
    workload = YcsbWorkload(WORKLOAD_B, cluster.rng.stream("load"))
    workload.populate(cluster.datastore)
    cluster.warm_cache(workload.keyspace.active_keys())

    exp = Experiment(cluster, duration=60.0, failures=[
        FailureSchedule(at=10.0, duration=10.0, targets=["cache-0"])])
    exp.add_load(ClosedLoopThread(cluster.sim, cluster.clients[0], workload))
    result = exp.run()
    assert result.oracle.stale_reads == 0
"""

from repro.errors import (
    CacheError,
    ConsistencyViolation,
    CoordinatorError,
    FragmentUnavailable,
    HostUnreachable,
    InstanceDown,
    LeaseBackoff,
    NetworkError,
    ReproError,
    RequestTimeout,
    SimulationError,
    StaleConfiguration,
    WorkloadError,
)
from repro.types import CACHE_MISS, FragmentMode, Value
from repro.recovery.policies import (
    GEMINI_I,
    GEMINI_I_W,
    GEMINI_O,
    GEMINI_O_W,
    STALE_CACHE,
    VOLATILE_CACHE,
    RecoveryPolicy,
    policy_by_name,
)
from repro.harness.cluster import ClusterSpec, GeminiCluster
from repro.harness.experiment import Experiment, ExperimentResult
from repro.sim.failures import FailureSchedule
from repro.verify.oracle import ConsistencyOracle

__version__ = "1.0.0"

__all__ = [
    "CACHE_MISS",
    "CacheError",
    "ClusterSpec",
    "ConsistencyOracle",
    "ConsistencyViolation",
    "CoordinatorError",
    "Experiment",
    "ExperimentResult",
    "FailureSchedule",
    "FragmentMode",
    "FragmentUnavailable",
    "GEMINI_I",
    "GEMINI_I_W",
    "GEMINI_O",
    "GEMINI_O_W",
    "GeminiCluster",
    "HostUnreachable",
    "InstanceDown",
    "LeaseBackoff",
    "NetworkError",
    "RecoveryPolicy",
    "ReproError",
    "RequestTimeout",
    "STALE_CACHE",
    "SimulationError",
    "StaleConfiguration",
    "VOLATILE_CACHE",
    "Value",
    "WorkloadError",
    "policy_by_name",
    "__version__",
]
