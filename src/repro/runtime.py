"""The dual-runtime contract: ``Kernel`` and ``Transport`` protocols.

The protocol components (client, coordinator, cache instance, recovery
worker, heartbeat monitor, workload threads) are generator-based actors
that only ever touch their execution environment through two narrow
surfaces:

* a **kernel** — a clock (``now``), delayed callbacks (``schedule``),
  and the waitable factories (``event``/``timeout``/``process``/
  ``all_of``/``any_of``) whose results they ``yield``;
* a **transport** — ``call(address, request, timeout)`` returning a
  waitable that resolves to the response (or fails with the handler's
  exception), plus ``bound(source)`` to stamp a caller identity.

This module names those surfaces as :class:`typing.Protocol` classes.
The deterministic simulator (:class:`repro.sim.core.Simulator` /
:class:`repro.sim.network.Network`) satisfies them **structurally, with
no adapter and no behavioural change** — which is what keeps the chaos
engine's byte-for-byte trial fingerprints stable across the extraction.
The wall-clock runtime (:mod:`repro.live`) provides a second
implementation driving the *same* generators over asyncio and TCP.

Layering rule (enforced by geminilint GEM010): protocol components may
import this module (and the sim substrate), but never :mod:`repro.live`
or :mod:`asyncio` — real-time concerns stay behind these protocols.

Note the waitable types themselves (:class:`~repro.sim.core.Event`,
``Process``, composites) are deliberately *shared*, not abstracted: both
kernels schedule the identical event machinery, so a generator cannot
tell which runtime is driving it.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Iterable, Optional, Protocol,
                    runtime_checkable)

from repro.sim.core import (AllOf, AnyOf, Event, KernelCounters, Process,
                            SimGenerator, Timeout)

if TYPE_CHECKING:  # optional hooks; live kernels simply keep them None
    from repro.obs.trace import Tracer
    from repro.sim.sanitizer import SimSanitizer

__all__ = ["Kernel", "Transport"]


@runtime_checkable
class Kernel(Protocol):
    """What a protocol component may demand of its execution kernel.

    ``Simulator`` implements this over a deterministic event heap;
    :class:`repro.live.kernel.LiveKernel` implements it over the asyncio
    event loop with real timers. Components must treat ``now`` as opaque
    seconds since an arbitrary epoch — simulated time in one runtime,
    wall-clock seconds since kernel start in the other.
    """

    @property
    def now(self) -> float:
        """Current kernel time in seconds (simulated or wall-clock)."""
        ...

    #: Optional interleaving sanitizer; None outside sanitized sim runs.
    sanitizer: Optional["SimSanitizer"]
    #: Optional causal tracer; None unless tracing is installed.
    tracer: Optional["Tracer"]
    #: Always-on kernel profiling counters.
    counters: KernelCounters
    #: The process currently being stepped (None in kernel callbacks).
    current_process: Optional[Process]

    def schedule(self, delay: float, callback: Any, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` kernel seconds."""
        ...

    def schedule_at(self, when: float, callback: Any, *args: Any) -> None:
        """Run ``callback(*args)`` at absolute kernel time ``when``."""
        ...

    def event(self) -> Event:
        ...

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        ...

    def process(self, generator: SimGenerator, name: str = "") -> Process:
        ...

    def all_of(self, events: Iterable[Event]) -> AllOf:
        ...

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        ...


@runtime_checkable
class Transport(Protocol):
    """RPC fabric as seen by a protocol component.

    ``call`` returns a waitable event: ``yield`` it from a process to
    receive the response, or observe the handler's exception —
    application-level errors (LeaseBackoff, StaleConfiguration, ...)
    propagate through exactly like a client library surfacing a server
    error code. ``timeout`` bounds the wait with
    :class:`~repro.errors.RequestTimeout`; both runtimes default their
    dead-host delay to the shared
    :data:`repro.config.defaults.DEFAULT_RPC_UNREACHABLE_DELAY` so sim
    and live agree on RPC deadlines.

    :class:`repro.sim.network.Network` (and its bound
    :class:`~repro.sim.network.NetworkHandle`) implement this in
    simulation; :class:`repro.live.transport.LiveTransport` implements
    it over length-prefixed TCP frames.
    """

    def call(self, address: str, request: Any,
             timeout: Optional[float] = None) -> Event:
        ...

    def bound(self, source: str) -> "Transport":
        """A facade whose RPCs carry ``source`` as the caller identity."""
        ...
