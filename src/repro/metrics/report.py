"""Plain-text report rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report. These helpers keep that output aligned and readable in a
terminal and in the captured bench logs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["format_table", "render_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths, strict=True)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def render_series(series: Sequence[Tuple[float, float]], title: str = "",
                  width: int = 60, height: int = 12) -> str:
    """ASCII line plot of an (x, y) series — a stand-in for the figures."""
    if not series:
        return f"{title}\n(empty series)"
    xs = [p[0] for p in series]
    ys = [p[1] for p in series]
    lo, hi = min(ys), max(ys)
    if hi == lo:
        hi = lo + 1.0
    columns: List[float] = []
    x_min, x_max = xs[0], xs[-1]
    span = (x_max - x_min) or 1.0
    buckets: List[List[float]] = [[] for __ in range(width)]
    for x, y in series:
        index = min(width - 1, int((x - x_min) / span * width))
        buckets[index].append(y)
    last = ys[0]
    for bucket in buckets:
        if bucket:
            last = sum(bucket) / len(bucket)
        columns.append(last)
    grid = [[" "] * width for __ in range(height)]
    for col, y in enumerate(columns):
        row = int((y - lo) / (hi - lo) * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.3g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{lo:10.3g} +" + "".join(grid[-1]))
    lines.append(" " * 12 + f"t={x_min:.0f}s".ljust(width - 10) + f"t={x_max:.0f}s")
    return "\n".join(lines)
