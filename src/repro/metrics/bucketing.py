"""Shared floor-based time bucketing.

Every bucketed metric (:class:`~repro.metrics.series.TimeSeries`,
:class:`~repro.metrics.series.WindowedCounter`,
:class:`~repro.metrics.latency.LatencyReservoir`) keys observations by
``bucket_index(when, width)``. The helper uses ``math.floor`` rather
than ``int()`` truncation: truncation rounds toward zero, so a value
just below zero (e.g. a latency stamped at ``-0.3`` by a clock-offset
experiment) would land in bucket 0 alongside ``[0, width)`` instead of
bucket -1, and series that mix signs bin inconsistently. Floor division
keeps every bucket a half-open interval ``[index * width,
(index + 1) * width)`` regardless of sign.
"""

from __future__ import annotations

import math

__all__ = ["bucket_index", "bucket_start"]


def bucket_index(when: float, width: float) -> int:
    """Index of the half-open bucket ``[index*width, (index+1)*width)``
    containing ``when``."""
    return math.floor(when / width)


def bucket_start(index: int, width: float) -> float:
    """Inclusive start time of bucket ``index``."""
    return index * width
