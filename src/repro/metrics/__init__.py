"""Measurement: time series, latency percentiles, and report formatting."""

from repro.metrics.series import TimeSeries, WindowedCounter
from repro.metrics.latency import LatencyReservoir, percentile
from repro.metrics.recorder import OpRecorder
from repro.metrics.recovery import FragmentRepairStats, RecoveryRecorder
from repro.metrics.report import format_table, render_series

__all__ = [
    "FragmentRepairStats",
    "LatencyReservoir",
    "OpRecorder",
    "RecoveryRecorder",
    "TimeSeries",
    "WindowedCounter",
    "format_table",
    "percentile",
    "render_series",
]
