"""Recovery-side repair instrumentation.

One :class:`RecoveryRecorder` is shared by all recovery workers of a
cluster (mirroring how :class:`~repro.metrics.recorder.OpRecorder` is
shared by all clients). It tracks, per fragment:

* repair throughput — keys repaired per second, as a
  :class:`~repro.metrics.series.TimeSeries`;
* the in-flight batch window — current depth and high-water mark, the
  observable of the pipelined repair loop;
* cumulative key outcomes (repaired / skipped / degraded) and batch
  counts.

The Figure 8 benchmarks and the batch-size ablation read these to show
where the recovery-time budget goes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.metrics.series import TimeSeries

__all__ = ["FragmentRepairStats", "RecoveryRecorder"]


class FragmentRepairStats:
    """Cumulative repair counters for one fragment."""

    __slots__ = ("fragment_id", "keys_repaired", "keys_skipped",
                 "keys_degraded", "batches", "inflight", "max_inflight",
                 "throughput")

    def __init__(self, fragment_id: int, bucket_width: float = 1.0):
        self.fragment_id = fragment_id
        self.keys_repaired = 0
        self.keys_skipped = 0
        self.keys_degraded = 0
        self.batches = 0
        self.inflight = 0
        self.max_inflight = 0
        self.throughput = TimeSeries(bucket_width)


class RecoveryRecorder:
    """Aggregates repair progress across every recovery worker."""

    def __init__(self, bucket_width: float = 1.0):
        self.bucket_width = bucket_width
        self.per_fragment: Dict[int, FragmentRepairStats] = {}

    def _stats(self, fragment_id: int) -> FragmentRepairStats:
        stats = self.per_fragment.get(fragment_id)
        if stats is None:
            stats = self.per_fragment[fragment_id] = FragmentRepairStats(
                fragment_id, bucket_width=self.bucket_width)
        return stats

    # -- worker hooks ------------------------------------------------------
    def batch_started(self, fragment_id: int) -> None:
        stats = self._stats(fragment_id)
        stats.inflight += 1
        stats.max_inflight = max(stats.max_inflight, stats.inflight)

    def batch_finished(self, fragment_id: int, now: float, *,
                       repaired: int = 0, skipped: int = 0,
                       degraded: int = 0) -> None:
        """``repaired`` counts every key handled (overwrites and deletes);
        ``degraded`` annotates the subset repaired via degraded deletes."""
        stats = self._stats(fragment_id)
        stats.inflight = max(0, stats.inflight - 1)
        stats.batches += 1
        stats.keys_repaired += repaired
        stats.keys_skipped += skipped
        stats.keys_degraded += degraded
        if repaired:
            stats.throughput.add(now, repaired)

    # -- summaries ---------------------------------------------------------
    def keys_repaired(self) -> int:
        return sum(s.keys_repaired for s in self.per_fragment.values())

    def keys_degraded(self) -> int:
        return sum(s.keys_degraded for s in self.per_fragment.values())

    def batches(self) -> int:
        return sum(s.batches for s in self.per_fragment.values())

    def max_inflight(self) -> int:
        depths = [s.max_inflight for s in self.per_fragment.values()]
        return max(depths) if depths else 0

    def throughput_series(self, fragment_id: int) -> List[Tuple[float, float]]:
        """(bucket, keys repaired per second) for one fragment."""
        stats = self.per_fragment.get(fragment_id)
        if stats is None:
            return []
        width = stats.throughput.bucket_width
        return [(t, s / width) for t, s in stats.throughput.sums()]

    def summary(self) -> Dict[str, float]:
        return {
            "fragments_touched": len(self.per_fragment),
            "keys_repaired": self.keys_repaired(),
            "keys_degraded": self.keys_degraded(),
            "keys_skipped": sum(
                s.keys_skipped for s in self.per_fragment.values()),
            "batches": self.batches(),
            "max_inflight": self.max_inflight(),
        }
