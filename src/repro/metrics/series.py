"""Bucketed time series.

All of the paper's figures are per-second series (hit ratio, throughput,
stale reads). :class:`TimeSeries` accumulates values into fixed-width
buckets keyed by simulated time, bounded in memory no matter how many
events flow through.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.metrics.bucketing import bucket_index, bucket_start

__all__ = ["TimeSeries", "WindowedCounter"]


class TimeSeries:
    """Per-bucket accumulator: counts and sums, O(1) per observation."""

    def __init__(self, bucket_width: float = 1.0):
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.bucket_width = bucket_width
        self._count: Dict[int, int] = {}
        self._sum: Dict[int, float] = {}

    def add(self, when: float, value: float = 1.0) -> None:
        bucket = bucket_index(when, self.bucket_width)
        self._count[bucket] = self._count.get(bucket, 0) + 1
        self._sum[bucket] = self._sum.get(bucket, 0.0) + value

    def count_at(self, when: float) -> int:
        return self._count.get(bucket_index(when, self.bucket_width), 0)

    def counts(self) -> List[Tuple[float, int]]:
        """(bucket start time, observation count) sorted by time."""
        return [(b * self.bucket_width, c)
                for b, c in sorted(self._count.items())]

    def rates(self) -> List[Tuple[float, float]]:
        """(bucket start time, observations per second)."""
        return [(t, c / self.bucket_width) for t, c in self.counts()]

    def sums(self) -> List[Tuple[float, float]]:
        """(bucket start time, summed observed value)."""
        return [(b * self.bucket_width, s)
                for b, s in sorted(self._sum.items())]

    def means(self) -> List[Tuple[float, float]]:
        """(bucket start time, mean observed value)."""
        out = []
        for bucket, count in sorted(self._count.items()):
            out.append((bucket * self.bucket_width,
                        self._sum[bucket] / count))
        return out

    def total_count(self) -> int:
        return sum(self._count.values())

    def total_sum(self) -> float:
        return sum(self._sum.values())

    def __len__(self) -> int:
        return len(self._count)


class WindowedCounter:
    """Ratio of two co-bucketed series (e.g. hits vs lookups).

    ``ratio_series`` yields per-bucket numerator/denominator, the shape of
    Figure 6/7 hit-ratio curves.
    """

    def __init__(self, bucket_width: float = 1.0):
        self.bucket_width = bucket_width
        self._num: Dict[int, int] = {}
        self._den: Dict[int, int] = {}
        #: Latest observation time per bucket: lets first_time_reaching
        #: tell whether a bucket saw any traffic after a mid-bucket
        #: measurement start.
        self._last: Dict[int, float] = {}

    def observe(self, when: float, success: bool) -> None:
        bucket = bucket_index(when, self.bucket_width)
        self._den[bucket] = self._den.get(bucket, 0) + 1
        if when >= self._last.get(bucket, when):
            self._last[bucket] = when
        if success:
            self._num[bucket] = self._num.get(bucket, 0) + 1

    def ratio_at(self, when: float) -> Optional[float]:
        bucket = bucket_index(when, self.bucket_width)
        den = self._den.get(bucket, 0)
        if den == 0:
            return None
        return self._num.get(bucket, 0) / den

    def ratio_series(self) -> List[Tuple[float, float]]:
        out = []
        for bucket, den in sorted(self._den.items()):
            out.append((bucket * self.bucket_width,
                        self._num.get(bucket, 0) / den))
        return out

    def overall_ratio(self) -> float:
        den = sum(self._den.values())
        if den == 0:
            return 0.0
        return sum(self._num.values()) / den

    def first_time_reaching(self, threshold: float,
                            after: float = 0.0) -> Optional[float]:
        """Earliest time at/after ``after`` whose bucket reaches the
        threshold — the 'time to restore hit ratio' measurement of
        Figures 8–9.

        Every bucket from the one *containing* ``after`` (a mid-bucket
        ``after`` is honored; the returned time is clamped up to
        ``after``) through the last observed bucket is examined in
        order. A bucket only counts as evidence if it observed traffic
        at/after ``after``: zero-traffic gap buckets are *not restored*
        (no lookups means no evidence the ratio recovered, so a gap can
        never be reported as the restoration point), and the bucket
        containing ``after`` qualifies only if some of its traffic
        actually arrived at/after ``after`` — not on the strength of
        pre-``after`` observations alone.
        """
        if not self._den:
            return None
        first = bucket_index(after, self.bucket_width)
        last = max(self._den)
        for bucket in range(first, last + 1):
            den = self._den.get(bucket, 0)
            if den == 0:
                # Gap bucket: no traffic, no evidence of restoration.
                continue
            if self._last.get(bucket, after) < after:
                # Only pre-`after` traffic in the containing bucket.
                continue
            if self._num.get(bucket, 0) / den >= threshold:
                return max(after, bucket_start(bucket, self.bucket_width))
        return None
