"""Client-side operation recorder.

One :class:`OpRecorder` is shared by all clients of an experiment; it
feeds the per-second series the paper plots:

* hit ratio (cache hits / lookups) — cluster-wide and per instance;
* throughput (completed operations per second);
* read-latency percentiles;
* stale reads (delegated to the consistency oracle by the client).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.metrics.latency import LatencyReservoir
from repro.metrics.series import TimeSeries, WindowedCounter
from repro.sim.rng import RngRegistry

__all__ = ["OpRecorder"]


class OpRecorder:
    """Aggregates every completed client operation."""

    def __init__(self, bucket_width: float = 1.0,
                 latency_capacity: int = 512,
                 rng_registry: Optional[RngRegistry] = None):
        self.bucket_width = bucket_width
        self.throughput = TimeSeries(bucket_width)
        self.hit_ratio = WindowedCounter(bucket_width)
        # Reservoir sampling draws from named registry streams so the
        # summaries are reproducible from the experiment seed alone.
        read_rng = (rng_registry.stream("metrics.read_latency")
                    if rng_registry is not None else None)
        write_rng = (rng_registry.stream("metrics.write_latency")
                     if rng_registry is not None else None)
        self.read_latency = LatencyReservoir(bucket_width, latency_capacity,
                                             rng=read_rng)
        self.write_latency = LatencyReservoir(bucket_width, latency_capacity,
                                              rng=write_rng)
        #: Hit ratio keyed by the instance that served the lookup.
        self.per_instance_hits: Dict[str, WindowedCounter] = {}
        self.reads = 0
        self.writes = 0
        self.cache_hits = 0
        self.datastore_reads = 0
        self.store_direct_reads = 0
        self.suspended_writes = 0
        self.lease_backoffs = 0
        self.config_refreshes = 0

    def _instance_counter(self, instance: str) -> WindowedCounter:
        counter = self.per_instance_hits.get(instance)
        if counter is None:
            counter = self.per_instance_hits[instance] = WindowedCounter(
                self.bucket_width)
        return counter

    def record_read(self, start: float, end: float, hit: bool,
                    instance: Optional[str], store_direct: bool = False) -> None:
        self.reads += 1
        self.throughput.add(end)
        self.read_latency.add(end, end - start)
        if store_direct:
            self.store_direct_reads += 1
            return  # bypassed the cache entirely: not a lookup
        self.hit_ratio.observe(end, hit)
        if hit:
            self.cache_hits += 1
        else:
            self.datastore_reads += 1
        if instance is not None:
            self._instance_counter(instance).observe(end, hit)

    def record_write(self, start: float, end: float,
                     suspended_for: float = 0.0) -> None:
        self.writes += 1
        self.throughput.add(end)
        self.write_latency.add(end, end - start)
        if suspended_for > 0:
            self.suspended_writes += 1

    def record_backoff(self) -> None:
        self.lease_backoffs += 1

    def record_config_refresh(self) -> None:
        self.config_refreshes += 1

    # -- summaries ---------------------------------------------------------
    def overall_hit_ratio(self) -> float:
        return self.hit_ratio.overall_ratio()

    def ops(self) -> int:
        return self.reads + self.writes

    def summary(self) -> Dict[str, float]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "cache_hits": self.cache_hits,
            "datastore_reads": self.datastore_reads,
            "store_direct_reads": self.store_direct_reads,
            "hit_ratio": self.overall_hit_ratio(),
            "lease_backoffs": self.lease_backoffs,
            "mean_read_latency": self.read_latency.overall_mean() or 0.0,
            "p90_read_latency": self.read_latency.overall_percentile(90) or 0.0,
            "p99_read_latency": self.read_latency.overall_percentile(99) or 0.0,
        }
