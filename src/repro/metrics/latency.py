"""Latency percentile tracking.

Figure 7.c plots the 90th-percentile read latency per second. Keeping
every sample would be unbounded, so each bucket holds a fixed-size
uniform reservoir (Vitter's algorithm R): percentiles stay accurate to a
couple of points with 512 samples, plenty for p90/p99 shape comparisons.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.bucketing import bucket_index
from repro.sim.rng import fallback_stream

__all__ = ["percentile", "LatencyReservoir"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence."""
    if not samples:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class _Reservoir:
    __slots__ = ("samples", "seen")

    def __init__(self):
        self.samples: List[float] = []
        self.seen = 0


class LatencyReservoir:
    """Per-time-bucket latency reservoirs."""

    def __init__(self, bucket_width: float = 1.0, capacity: int = 512,
                 seed: int = 17,
                 rng: Optional[random.Random] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.bucket_width = bucket_width
        self.capacity = capacity
        self._rng = fallback_stream(rng, "metrics.latency", seed)
        self._buckets: Dict[int, _Reservoir] = {}
        self._all = _Reservoir()
        self._exact_sum = 0.0
        self._exact_count = 0

    def add(self, when: float, latency: float) -> None:
        bucket = bucket_index(when, self.bucket_width)
        reservoir = self._buckets.get(bucket)
        if reservoir is None:
            reservoir = self._buckets[bucket] = _Reservoir()
        self._observe(reservoir, latency)
        self._observe(self._all, latency)
        self._exact_sum += latency
        self._exact_count += 1

    def _observe(self, reservoir: _Reservoir, latency: float) -> None:
        reservoir.seen += 1
        if len(reservoir.samples) < self.capacity:
            reservoir.samples.append(latency)
            return
        slot = self._rng.randrange(reservoir.seen)
        if slot < self.capacity:
            reservoir.samples[slot] = latency

    def percentile_at(self, when: float, q: float) -> Optional[float]:
        reservoir = self._buckets.get(bucket_index(when, self.bucket_width))
        if reservoir is None or not reservoir.samples:
            return None
        return percentile(reservoir.samples, q)

    def percentile_series(self, q: float) -> List[Tuple[float, float]]:
        """(bucket start time, q-th percentile) — Figure 7.c's series."""
        out = []
        for bucket, reservoir in sorted(self._buckets.items()):
            if reservoir.samples:
                out.append((bucket * self.bucket_width,
                            percentile(reservoir.samples, q)))
        return out

    def overall_percentile(self, q: float) -> Optional[float]:
        if not self._all.samples:
            return None
        return percentile(self._all.samples, q)

    def overall_mean(self) -> Optional[float]:
        """Exact mean over every observation (not reservoir-sampled)."""
        if self._exact_count == 0:
            return None
        return self._exact_sum / self._exact_count

    def count(self) -> int:
        return self._all.seen
