"""Master + shadow coordinators.

The paper keeps one master and one or more shadow coordinators in
ZooKeeper and promotes a shadow when the master fails (like RAMCloud).
Its prototype — like this reproduction — does not run a real ZooKeeper;
we model the ensemble directly: the master replicates a state snapshot to
every shadow after each publish, and :meth:`fail_master` promotes the
first shadow, which adopts the last replicated snapshot and the client
subscriptions. Clients resolve the active coordinator through
:attr:`active_address`, standing in for the ZooKeeper lookup.
"""

from __future__ import annotations

from typing import Dict, List

from repro.coordinator.coordinator import Coordinator
from repro.errors import CoordinatorError
from repro.runtime import Kernel, Transport

__all__ = ["CoordinatorEnsemble"]


class CoordinatorEnsemble:
    """One master coordinator plus hot shadows."""

    def __init__(self, sim: Kernel, network: Transport, master: Coordinator,
                 num_shadows: int = 1) -> None:
        if num_shadows < 0:
            raise CoordinatorError("num_shadows must be >= 0")
        self.sim = sim
        self.network = network
        self.master = master
        self.shadows: List[Coordinator] = []
        self._snapshots: Dict[str, dict] = {}
        self.promotions = 0
        for index in range(num_shadows):
            shadow = Coordinator(
                sim, network,
                instances=list(master._instances),
                num_fragments=master.current.num_fragments,
                policy=master.policy,
                address=f"{master.address}-shadow-{index}",
                initial_config_id=master.current.config_id,
                monitor_interval=master.monitor_interval,
                event_log=master.event_log,
            )
            network.register(shadow)
            self.shadows.append(shadow)
        # Replicate on every publish: piggyback on the subscriber fan-out.
        master.subscribe(lambda config: self._replicate())
        self._replicate()

    @property
    def active(self) -> Coordinator:
        return self.master

    @property
    def active_address(self) -> str:
        return self.master.address

    def _replicate(self) -> None:
        snapshot = self.master.snapshot_state()
        for shadow in self.shadows:
            self._snapshots[shadow.address] = snapshot

    def fail_master(self) -> Coordinator:
        """Kill the master and promote the first shadow.

        Subscriptions move to the new master so clients keep receiving
        configurations; returns the promoted coordinator.
        """
        if not self.shadows:
            raise CoordinatorError("no shadow available for promotion")
        old = self.master
        old.fail()
        promoted = self.shadows.pop(0)
        snapshot = self._snapshots.get(promoted.address)
        if snapshot is not None:
            promoted.restore_state(snapshot)
        promoted._subscribers = list(old._subscribers)
        promoted._wst_feedback = old._wst_feedback
        self.master = promoted
        self.promotions += 1
        promoted.subscribe(lambda config: self._replicate())
        self._replicate()
        return promoted
