"""The Gemini coordinator.

Owns the authoritative fragment table and drives the fragment lifecycle
of Figure 4:

* **instance fails** — every fragment whose primary lived there gets a
  secondary replica on a surviving instance (round-robin, Section 4), a
  freshly-created dirty list (with the eviction marker), and transient
  mode. Fragments whose *secondary* lived there lose their dirty list:
  the primary replica is declared unrecoverable and, if the primary is
  still down, a replacement serving replica is assigned.
* **instance recovers** — each of its fragments is checked: if the dirty
  list is present and complete, the fragment enters recovery mode with
  its validity floor (``cfg_id``) *restored* to the pre-failure value so
  its surviving entries are valid again; otherwise the floor is bumped to
  the new configuration id, lazily discarding everything (Example 3.1).
* **dirty list processed / working-set transfer finished** — back to
  normal mode.

Every transition produces a new immutable :class:`Configuration` with an
incremented id, pushed to the alive instances *first* (so stale-client
requests bounce with :class:`StaleConfiguration`) and then to subscribed
clients and workers. Transitions are serialized by a mutex because they
interleave with the RPCs they issue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from repro.cache.instance import CacheOp
from repro.config.configuration import Configuration, FragmentInfo
from repro.errors import CoordinatorError, NetworkError, StaleConfiguration
from repro.recovery.policies import RecoveryPolicy
from repro.runtime import Kernel, Transport
from repro.sim.core import SimGenerator
from repro.sim.network import RemoteNode
from repro.sim.sanitizer import active as _sanitizer_active
from repro.sim.sync import Mutex
from repro.types import CACHE_MISS, FragmentMode

__all__ = ["Coordinator", "CoordinatorOp"]


@dataclass
class CoordinatorOp:
    """One RPC to the coordinator."""

    op: str
    address: Optional[str] = None
    fragment_id: Optional[int] = None
    payload: Any = None


class Coordinator(RemoteNode):
    """Master coordinator (one per cluster; see shadow.py for failover)."""

    def __init__(self, sim: Kernel, network: Transport,
                 instances: List[str], num_fragments: int,
                 policy: RecoveryPolicy,
                 address: str = "coordinator",
                 initial_config_id: int = 1,
                 monitor_interval: float = 1.0,
                 wst_max_duration: float = 300.0,
                 event_log=None) -> None:
        super().__init__(sim, address, servers=16)
        #: Optional structured protocol-event stream (verify.events).
        self.event_log = event_log
        # Outgoing RPCs carry this coordinator's identity so that link
        # faults (e.g. a coordinator<->instance partition) affect them.
        self.network = network.bound(address)
        self.policy = policy
        self.monitor_interval = monitor_interval
        self.wst_max_duration = wst_max_duration
        self._instances = list(instances)
        self._alive: Set[str] = set(instances)
        self.current = Configuration.initial(instances, num_fragments,
                                             initial_config_id)
        #: Last configuration whose instance fan-out completed. Clients
        #: may only ever see this one: handing out `current` mid-publish
        #: would let a client fetch a recovery-mode dirty list before the
        #: secondary learned the new id, racing one final transient-mode
        #: append past the client's copy.
        self.published = self.current
        self._fragments: Dict[int, FragmentInfo] = {
            f.fragment_id: f for f in self.current.fragments}
        self._config_id = initial_config_id
        #: Original owner of each fragment; recovery hands fragments back.
        self._home: Dict[int, str] = {
            f.fragment_id: f.primary for f in self.current.fragments}
        self._pre_failure_cfg: Dict[int, int] = {}
        self._recoverable: Dict[int, bool] = {}
        self._dirty_done: Set[int] = set()
        #: Coordinator-held dirty list copies, the fallback used when a
        #: secondary dies during recovery (Section 3.3).
        self._dirty_copy: Dict[int, List[str]] = {}
        self._lock = Mutex(sim, name=f"transition-lock:{address}")
        self._subscribers: List[Callable[[Configuration], None]] = []
        #: Pre-failure windowed hit ratio per instance (the h threshold).
        self._pre_failure_hit: Dict[str, float] = {}
        self._last_stats: Dict[str, Dict[str, int]] = {}
        self._window_hit: Dict[str, float] = {}
        self._wst_feedback: Optional[
            Callable[[str, int], Dict[str, int]]] = None
        self._last_wst_counts: Dict[str, Dict[str, int]] = {}
        # Counters
        self.publishes = 0
        self.fragments_discarded = 0
        self.transitions: List[tuple] = []

    # The committed configuration id is the one shared cell whose
    # check-then-act windows (read under the transition lock, commit
    # after a fan-out of RPC yields) are NOT protected by the IQ lease
    # protocol — the transition Mutex alone guards them. Routing every
    # access through this property gives the interleaving sanitizer a
    # paired read/write footprint for exactly that cell.
    @property
    def _config_id(self) -> int:
        sanitizer = _sanitizer_active()
        if sanitizer is not None:
            sanitizer.record_read("config_id", self.address)
        return self._config_id_value

    @_config_id.setter
    def _config_id(self, value: int) -> None:
        sanitizer = _sanitizer_active()
        if sanitizer is not None:
            sanitizer.record_write("config_id", self.address)
        self._config_id_value = value

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[Configuration], None]) -> None:
        """Receive every published configuration (clients & workers)."""
        self._subscribers.append(callback)

    def _emit(self, kind: str, **data) -> None:
        if self.event_log is not None:
            self.event_log.emit(kind, actor=self.address, **data)

    def register_wst_feedback(
            self, fn: Callable[[str, int], Dict[str, int]]) -> None:
        """Aggregated client-side WST lookup counters per recovering
        instance *and outage episode* (stands in for the
        client->coordinator feedback RPCs). Episode-keying keeps counts
        from a previous outage of the same primary out of the
        m-threshold termination decision."""
        self._wst_feedback = fn

    def alive_instances(self) -> List[str]:
        return [a for a in self._instances if a in self._alive]

    def is_alive(self, address: str) -> bool:
        return address in self._alive

    def pre_failure_hit_ratio(self, address: str) -> Optional[float]:
        return self._pre_failure_hit.get(address)

    # ------------------------------------------------------------------
    # RPC surface
    # ------------------------------------------------------------------
    def service_time(self, request: CoordinatorOp) -> float:
        return 20e-6

    def handle_request(self, request: CoordinatorOp) -> Any:
        handler = getattr(self, f"op_{request.op}", None)
        if handler is None:
            raise CoordinatorError(f"unknown coordinator op {request.op!r}")
        return handler(request)

    def op_get_config(self, request: CoordinatorOp) -> Configuration:
        return self.published

    def op_report_failure(self, request: CoordinatorOp) -> bool:
        self.notify_failure(request.address)
        return True

    def op_report_recovery(self, request: CoordinatorOp) -> bool:
        self.notify_recovery(request.address)
        return True

    def op_dirty_done(self, request: CoordinatorOp) -> bool:
        self.notify_dirty_done(request.fragment_id)
        return True

    def op_dirty_lost(self, request: CoordinatorOp) -> bool:
        self.notify_dirty_lost(request.fragment_id)
        return True

    def op_get_dirty_copy(self, request: CoordinatorOp) -> Any:
        return list(self._dirty_copy.get(request.fragment_id, []))

    def op_stats(self, request: CoordinatorOp) -> Dict[str, Any]:
        return {
            "config_id": self._config_id,
            "publishes": self.publishes,
            "fragments_discarded": self.fragments_discarded,
            "alive": len(self._alive),
        }

    # ------------------------------------------------------------------
    # Entry points (also callable directly by the failure injector)
    # ------------------------------------------------------------------
    # A dead coordinator must not start transitions from any entry
    # point. RPC paths are already refused by the network, but these are
    # callable directly (injector subscriptions, harness code), so each
    # carries the same liveness guard as on_injector_event (GEM005).
    def notify_failure(self, address: str) -> None:
        if not self.up:
            return
        if address in self._alive:
            self.sim.process(self._handle_failure(address),
                             name=f"coord-fail:{address}")

    def notify_recovery(self, address: str) -> None:
        if not self.up:
            return
        if address not in self._alive:
            self.sim.process(self._handle_recovery(address),
                             name=f"coord-recover:{address}")

    def notify_dirty_done(self, fragment_id: int) -> None:
        if not self.up:
            return
        self.sim.process(self._handle_dirty_done(fragment_id),
                         name=f"coord-dirty-done:{fragment_id}")

    def notify_dirty_lost(self, fragment_id: int) -> None:
        """A client/worker found the dirty list missing or partial."""
        if not self.up:
            return
        self.sim.process(self._handle_dirty_lost(fragment_id),
                         name=f"coord-dirty-lost:{fragment_id}")

    def notify_wst_done(self, address: str) -> None:
        if not self.up:
            return
        self.sim.process(self._handle_wst_done(address),
                         name=f"coord-wst-done:{address}")

    def on_injector_event(self, event: str, address: str) -> None:
        """Adapter for :class:`repro.sim.failures.FailureInjector`.

        A dead coordinator ignores membership events: after a failover
        the promoted shadow owns them, and the old master must not keep
        committing configurations from its diverged state (its injector
        subscription — unlike client RPCs, which the network refuses —
        would otherwise still fire). Found by the chaos engine: the
        stale master's pushes routed writes where the promoted master's
        recovery never looked, losing them from the dirty list.
        """
        if not self.up:
            return
        if event == "fail":
            self.notify_failure(address)
        elif event == "recover":
            self.notify_recovery(address)

    # ------------------------------------------------------------------
    # Transitions (processes; serialized by the mutex)
    # ------------------------------------------------------------------
    def _trace_transition(self, name: str, **attrs: Any):
        """Open a transition span (or None when no tracer is installed).

        Spans open *before* the lock acquire so the serialized wait shows
        up as span time; the caller stamps ``lock_wait`` after acquiring.
        """
        tracer = self.sim.tracer
        if tracer is None:
            return None
        return tracer.begin(name, kind="transition", **attrs)

    def _trace_close(self, span) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.end(span)

    def _handle_failure(self, address: str) -> SimGenerator:
        span = self._trace_transition("failure", address=address)
        queued = self.sim.now
        yield self._lock.acquire()
        if span is not None:
            span.attrs["lock_wait"] = self.sim.now - queued
        try:
            if address not in self._alive:
                return
            self._alive.discard(address)
            self._pre_failure_hit[address] = self._window_hit.get(address, 0.0)
            if not any(a in self._alive for a in self._instances):
                # Total outage: every instance is down, so there is no
                # survivor to host dirty lists or absorb the failed
                # primary's fragments. Leave the configuration untouched
                # and wait for recoveries — committing here would route
                # fragments to dead hosts. The interleaving sanitizer
                # found this path dying inside the assigner with an
                # unobserved CoordinatorError, mid-transition.
                self.transitions.append((self.sim.now, "outage",
                                         address, 0))
                self._emit("total_outage", address=address)
                return
            new_id = self._config_id + 1
            updates: Dict[int, FragmentInfo] = {}
            dirty_creates: List[tuple] = []
            assign = self._round_robin_assigner(exclude={address})
            for fragment in list(self._fragments.values()):
                fid = fragment.fragment_id
                if fragment.primary == address and fragment.mode is FragmentMode.NORMAL:
                    secondary = next(assign)
                    self._pre_failure_cfg[fid] = fragment.cfg_id
                    self._recoverable[fid] = self.policy.maintain_dirty
                    self._dirty_done.discard(fid)
                    updates[fid] = fragment.replace(
                        secondary=secondary, mode=FragmentMode.TRANSIENT,
                        cfg_id=new_id, wst_active=False, episode=new_id)
                    self._emit("transient_begin", fragment_id=fid,
                               episode=new_id, secondary=secondary,
                               resumed=False)
                    if self.policy.maintain_dirty:
                        dirty_creates.append((secondary, fid, True))
                elif fragment.primary == address and fragment.mode is FragmentMode.RECOVERY:
                    # Arrow 5 in Figure 4: failed again before recovery
                    # completed. Keep the restored floor; the dirty list in
                    # the secondary keeps covering the outage, so its
                    # (re-)creation must *not* mint a fresh marker.
                    self._dirty_done.discard(fid)
                    updates[fid] = fragment.replace(
                        mode=FragmentMode.TRANSIENT, wst_active=False)
                    self._emit("transient_begin", fragment_id=fid,
                               episode=fragment.cfg_id,
                               secondary=fragment.secondary, resumed=True)
                    if self.policy.maintain_dirty and fragment.secondary:
                        dirty_creates.append((fragment.secondary, fid, False))
                elif fragment.secondary == address and fragment.mode is FragmentMode.TRANSIENT:
                    # The dirty list is gone: discard the primary replica
                    # and move the fragment to a fresh serving instance.
                    self._recoverable[fid] = False
                    replacement = next(assign)
                    self.fragments_discarded += 1
                    updates[fid] = fragment.replace(
                        secondary=replacement, cfg_id=new_id, episode=new_id)
                    self._emit("fragment_unrecoverable", fragment_id=fid)
                    self._emit("transient_begin", fragment_id=fid,
                               episode=new_id, secondary=replacement,
                               resumed=False)
                    if self.policy.maintain_dirty:
                        dirty_creates.append((replacement, fid, True))
                elif fragment.secondary == address and fragment.mode is FragmentMode.RECOVERY:
                    # Section 3.3: terminate the transfer; remaining dirty
                    # keys are repaired from the coordinator's copy.
                    updates[fid] = fragment.replace(
                        secondary=None, wst_active=False)
                elif fragment.primary == address:
                    # transient primary failed "again": nothing changes,
                    # the secondary keeps serving.
                    continue
            self.transitions.append((self.sim.now, "failure", address,
                                     len(updates)))
            if updates:
                yield from self._commit(new_id, updates)
                yield from self._create_dirty_lists(dirty_creates)
            else:
                self._config_id = new_id
                self.current = self.current.evolve(new_id, {})
                self._emit("config_commit", config=self.current)
                self._trace_commit(new_id, 0)
                yield from self._push_configuration()
        finally:
            self._lock.release()
            self._trace_close(span)

    def _handle_recovery(self, address: str) -> SimGenerator:
        span = self._trace_transition("recovery", address=address)
        queued = self.sim.now
        yield self._lock.acquire()
        if span is not None:
            span.attrs["lock_wait"] = self.sim.now - queued
        try:
            if address in self._alive:
                return
            self._alive.add(address)
            if self.policy.kind == "volatile":
                yield from self._recover_volatile(address)
            elif self.policy.kind == "stale":
                yield from self._recover_stale(address)
            else:
                yield from self._recover_gemini(address)
        finally:
            self._lock.release()
            self._trace_close(span)

    def _recovering_fragments(self, address: str) -> List[FragmentInfo]:
        """Fragments homed at `address` currently served elsewhere."""
        out = []
        for fragment in self._fragments.values():
            if self._home[fragment.fragment_id] == address:
                out.append(fragment)
        return out

    def _recover_volatile(self, address: str) -> SimGenerator:
        """Baseline: the instance lost its content; wipe and reuse empty."""
        try:
            yield self.network.call(address, CacheOp(op="wipe"))
        except (NetworkError, StaleConfiguration):
            pass
        new_id = self._config_id + 1
        updates = {}
        for fragment in self._recovering_fragments(address):
            if fragment.mode is FragmentMode.NORMAL and fragment.primary == address:
                continue
            updates[fragment.fragment_id] = fragment.replace(
                primary=address, secondary=None, mode=FragmentMode.NORMAL,
                cfg_id=new_id, wst_active=False, episode=0)
        self.transitions.append((self.sim.now, "recover-volatile", address,
                                 len(updates)))
        yield from self._commit(new_id, updates)

    def _recover_stale(self, address: str) -> SimGenerator:
        """Baseline: reuse content as-is — floors restored, no repair."""
        new_id = self._config_id + 1
        updates = {}
        for fragment in self._recovering_fragments(address):
            fid = fragment.fragment_id
            if fragment.mode is FragmentMode.NORMAL and fragment.primary == address:
                continue
            floor = self._pre_failure_cfg.get(fid, fragment.cfg_id)
            updates[fid] = fragment.replace(
                primary=address, secondary=None, mode=FragmentMode.NORMAL,
                cfg_id=floor, wst_active=False, episode=0)
        self.transitions.append((self.sim.now, "recover-stale", address,
                                 len(updates)))
        yield from self._commit(new_id, updates)

    def _recover_gemini(self, address: str) -> SimGenerator:
        """Full protocol: recovery mode for recoverable fragments,
        discard (floor bump) for the rest (Example 3.1)."""
        new_id = self._config_id + 1
        updates: Dict[int, FragmentInfo] = {}
        recovery_fragments: List[FragmentInfo] = []
        #: Transient-mode episode (pre-replace cfg_id) per recovering
        #: fragment, for the recovery_dirty events emitted below.
        episodes: Dict[int, int] = {}
        for fragment in self._recovering_fragments(address):
            fid = fragment.fragment_id
            if fragment.mode is FragmentMode.NORMAL and fragment.primary == address:
                continue
            episodes[fid] = fragment.cfg_id
            recoverable = self._recoverable.get(fid, False)
            dirty = CACHE_MISS
            if recoverable and fragment.secondary is not None:
                try:
                    dirty = yield self.network.call(
                        fragment.secondary,
                        CacheOp(op="get_dirty", fragment_id=fid,
                                client_cfg_id=self._config_id))
                except (NetworkError, StaleConfiguration):
                    dirty = CACHE_MISS
            if dirty is CACHE_MISS or not dirty.complete:
                recoverable = False
            if not recoverable:
                self.fragments_discarded += 1
                self._emit("fragment_discarded", fragment_id=fid)
                if fragment.secondary is not None:
                    # Best-effort removal of any leftover (partial) list so
                    # it cannot be mistaken for live state later.
                    try:
                        yield self.network.call(
                            fragment.secondary,
                            CacheOp(op="delete_dirty", fragment_id=fid,
                                    client_cfg_id=self._config_id))
                    except (NetworkError, StaleConfiguration):
                        pass
                updates[fid] = fragment.replace(
                    primary=address, secondary=None, mode=FragmentMode.NORMAL,
                    cfg_id=new_id, wst_active=False, episode=0)
                continue
            floor = self._pre_failure_cfg.get(fid, fragment.cfg_id)
            info = fragment.replace(
                primary=address, mode=FragmentMode.RECOVERY, cfg_id=floor,
                wst_active=self.policy.working_set_transfer)
            updates[fid] = info
            recovery_fragments.append(info)
        self.transitions.append((self.sim.now, "recover-gemini", address,
                                 len(updates)))
        yield from self._commit(new_id, updates)
        # Refresh the fallback dirty copies *after* instances learned the
        # new id: no append can race past this point (stale writers bounce).
        for info in recovery_fragments:
            if info.secondary is None:
                continue
            try:
                dirty = yield self.network.call(
                    info.secondary,
                    CacheOp(op="get_dirty", fragment_id=info.fragment_id,
                            client_cfg_id=self._config_id))
            except (NetworkError, StaleConfiguration):
                continue
            if dirty is not CACHE_MISS:
                self._dirty_copy[info.fragment_id] = dirty.keys()
                self._emit("recovery_dirty", fragment_id=info.fragment_id,
                           episode=episodes.get(info.fragment_id),
                           secondary=info.secondary,
                           keys=tuple(dirty.keys()),
                           complete=dirty.complete)
        if self.policy.working_set_transfer and recovery_fragments:
            self.sim.process(self._wst_monitor(address),
                             name=f"wst-monitor:{address}")

    def _handle_dirty_done(self, fragment_id: int) -> SimGenerator:
        span = self._trace_transition("dirty-done", fragment_id=fragment_id)
        queued = self.sim.now
        yield self._lock.acquire()
        if span is not None:
            span.attrs["lock_wait"] = self.sim.now - queued
        try:
            fragment = self._fragments.get(fragment_id)
            if fragment is None or fragment.mode is not FragmentMode.RECOVERY:
                return
            self._dirty_done.add(fragment_id)
            self._dirty_copy.pop(fragment_id, None)
            self._emit("dirty_done", fragment_id=fragment_id)
            if fragment.wst_active:
                return  # stays in recovery until the transfer terminates
            new_id = self._config_id + 1
            updates = {fragment_id: fragment.replace(
                secondary=None, mode=FragmentMode.NORMAL, episode=0)}
            self.transitions.append((self.sim.now, "dirty-done", fragment_id, 1))
            yield from self._commit(new_id, updates)
        finally:
            self._lock.release()
            self._trace_close(span)

    def _handle_dirty_lost(self, fragment_id: int) -> SimGenerator:
        """The dirty list was evicted (or found partial): terminate
        transient mode and discard the primary replica (Section 3.1)."""
        span = self._trace_transition("dirty-lost", fragment_id=fragment_id)
        queued = self.sim.now
        yield self._lock.acquire()
        if span is not None:
            span.attrs["lock_wait"] = self.sim.now - queued
        try:
            fragment = self._fragments.get(fragment_id)
            if fragment is None or fragment.mode is not FragmentMode.TRANSIENT:
                return
            self._recoverable[fragment_id] = False
            self._emit("dirty_lost", fragment_id=fragment_id)
            new_id = self._config_id + 1
            # Promote the secondary to primary (Section 3.1); the old
            # primary replica is dead content that the floor bump discards
            # when its instance returns and the fragment is handed back.
            updates = {fragment_id: fragment.replace(
                primary=fragment.secondary, secondary=None,
                mode=FragmentMode.NORMAL, cfg_id=new_id, episode=0)}
            self.fragments_discarded += 1
            self.transitions.append((self.sim.now, "dirty-lost", fragment_id, 1))
            yield from self._commit(new_id, updates)
        finally:
            self._lock.release()
            self._trace_close(span)

    def _handle_wst_done(self, address: str) -> SimGenerator:
        span = self._trace_transition("wst-done", address=address)
        queued = self.sim.now
        yield self._lock.acquire()
        if span is not None:
            span.attrs["lock_wait"] = self.sim.now - queued
        try:
            new_id = self._config_id + 1
            updates = {}
            for fragment in self._fragments.values():
                if fragment.primary != address or not fragment.wst_active:
                    continue
                fid = fragment.fragment_id
                if fid in self._dirty_done:
                    updates[fid] = fragment.replace(
                        secondary=None, mode=FragmentMode.NORMAL,
                        wst_active=False, episode=0)
                else:
                    updates[fid] = fragment.replace(wst_active=False)
            if not updates:
                return
            self.transitions.append((self.sim.now, "wst-done", address,
                                     len(updates)))
            yield from self._commit(new_id, updates)
        finally:
            self._lock.release()
            self._trace_close(span)

    def _round_robin_assigner(self, exclude: Set[str]):
        """Yield surviving instances round-robin (Section 4's distribution
        of a failed instance's fragments)."""
        candidates = [a for a in self._instances
                      if a in self._alive and a not in exclude]
        if not candidates:
            raise CoordinatorError("no surviving instance to assign to")
        index = 0
        while True:
            yield candidates[index % len(candidates)]
            index += 1

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def _trace_commit(self, new_id: int, n_updates: int) -> None:
        """Instant commit span, emitted at the same simulated instant as
        the ``config_commit`` protocol event — the timeline reconstructor
        cross-checks the two streams (id, time) pair by pair."""
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("config-commit", kind="commit",
                           config_id=new_id, updates=n_updates)

    def _commit(self, new_id: int, updates: Dict[int, FragmentInfo]):
        """Mutate the authoritative table, then push the configuration."""
        self._config_id = new_id
        for fid, info in updates.items():
            self._fragments[fid] = info
        self.current = self.current.evolve(new_id, updates)
        self._emit("config_commit", config=self.current)
        self._trace_commit(new_id, len(updates))
        yield from self._push_configuration()

    def _push_configuration(self) -> SimGenerator:
        """Instances first (stale clients must bounce), then subscribers."""
        self.publishes += 1
        config = self.current
        calls = []
        for instance in self.alive_instances():
            calls.append(self.network.call(
                instance, CacheOp(op="set_config", value=config)))
        for call in calls:
            try:
                yield call
            except (NetworkError, StaleConfiguration):
                continue
        self.published = config
        for callback in self._subscribers:
            callback(config)

    def _create_dirty_lists(self, creates: List[tuple]) -> SimGenerator:
        """Initialize marker-bearing dirty lists on the new secondaries.

        ``creates`` entries are ``(secondary, fragment_id, fresh)``;
        ``fresh=False`` marks a resumed episode (Figure 4 arrow 5) whose
        list must survive from before — if the instance cannot certify
        that (missing or partial list) the fragment is unrecoverable.
        """
        for secondary, fragment_id, fresh in creates:
            try:
                complete = yield self.network.call(
                    secondary,
                    CacheOp(op="create_dirty", fragment_id=fragment_id,
                            client_cfg_id=self._config_id,
                            payload={"fresh": fresh}))
            except (NetworkError, StaleConfiguration):
                self.notify_dirty_lost(fragment_id)
                continue
            if not complete:
                # The resumed episode's log lost its prefix while the
                # fragment was in recovery mode (eviction): give up on it
                # now rather than letting recovery trust a reset list.
                self.notify_dirty_lost(fragment_id)

    # ------------------------------------------------------------------
    # Monitoring (instance hit ratios; WST termination, Section 3.2.2)
    # ------------------------------------------------------------------
    def start_monitor(self) -> None:
        """Sample alive instances' hit ratios every monitor_interval.

        Keeps the windowed hit ratio used as the h threshold snapshot at
        failure time.
        """
        self.sim.process(self._monitor_loop(), name="coord-monitor")

    def _monitor_loop(self) -> SimGenerator:
        while True:
            yield self.monitor_interval
            for address in self.alive_instances():
                try:
                    stats = yield self.network.call(
                        address, CacheOp(op="stats"))
                except (NetworkError, StaleConfiguration):
                    continue
                last = self._last_stats.get(address)
                if last is not None:
                    hits = stats["hits"] - last["hits"]
                    misses = stats["misses"] - last["misses"]
                    total = hits + misses
                    if total > 0:
                        self._window_hit[address] = hits / total
                self._last_stats[address] = stats

    def _wst_monitor(self, address: str):
        """Terminate the working-set transfer for `address`'s fragments
        once primary hit ratio > h or secondary WST miss ratio > m."""
        h = self.policy.wst_hit_threshold
        if h is None:
            captured = self._pre_failure_hit.get(address, 0.0)
            h = max(0.0, captured - self.policy.wst_epsilon)
        m = min(1.0, 1.0 - h + self.policy.wst_epsilon)
        started = self.sim.now
        # Fresh baseline per monitor: a previous outage of this primary
        # left its final totals here, and differencing against those
        # would poison this episode's miss-ratio window (negative or
        # zero deltas that suppress the m-threshold decision).
        self._last_wst_counts[address] = {"hits": 0, "misses": 0}
        while True:
            yield self.monitor_interval
            if self.sim.now - started > self.wst_max_duration:
                self.notify_wst_done(address)
                return
            fragment_active = any(
                f.primary == address and f.wst_active
                for f in self._fragments.values())
            if not fragment_active:
                return
            if address not in self._alive:
                return
            primary_hit = self._window_hit.get(address)
            if primary_hit is not None and h > 0 and primary_hit >= h:
                self.notify_wst_done(address)
                return
            if self._wst_feedback is not None:
                episodes = sorted({
                    f.episode for f in self._fragments.values()
                    if f.primary == address and f.wst_active})
                counts = {"hits": 0, "misses": 0}
                for episode in episodes:
                    got = self._wst_feedback(address, episode)
                    counts["hits"] += got["hits"]
                    counts["misses"] += got["misses"]
                last = self._last_wst_counts.get(address, {"hits": 0, "misses": 0})
                hits = counts["hits"] - last["hits"]
                misses = counts["misses"] - last["misses"]
                self._last_wst_counts[address] = dict(counts)
                total = hits + misses
                if total > 10 and misses / total >= m:
                    self.notify_wst_done(address)
                    return

    # ------------------------------------------------------------------
    def fragment(self, fragment_id: int) -> FragmentInfo:
        return self._fragments[fragment_id]

    def home_of(self, fragment_id: int) -> str:
        return self._home[fragment_id]

    # ------------------------------------------------------------------
    # State replication (shadow coordinators, Section 2.1)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Everything a shadow needs to take over."""
        return {
            "config": self.current,
            "config_id": self._config_id,
            "alive": set(self._alive),
            "home": dict(self._home),
            "pre_failure_cfg": dict(self._pre_failure_cfg),
            "recoverable": dict(self._recoverable),
            "dirty_done": set(self._dirty_done),
            "dirty_copy": {k: list(v) for k, v in self._dirty_copy.items()},
            "pre_failure_hit": dict(self._pre_failure_hit),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Adopt a replicated snapshot (shadow promotion)."""
        self.current = state["config"]
        self.published = state["config"]
        self._config_id = state["config_id"]
        self._fragments = {f.fragment_id: f for f in self.current.fragments}
        self._alive = set(state["alive"])
        self._home = dict(state["home"])
        self._pre_failure_cfg = dict(state["pre_failure_cfg"])
        self._recoverable = dict(state["recoverable"])
        self._dirty_done = set(state["dirty_done"])
        self._dirty_copy = {k: list(v) for k, v in state["dirty_copy"].items()}
        self._pre_failure_hit = dict(state["pre_failure_hit"])
