"""Heartbeat-based failure detection.

The paper's evaluation *emulates* failures through the coordinator, but
the protocol itself must also survive real crashes. The monitor pings
every instance on a fixed period; ``misses_to_fail`` consecutive missed
heartbeats declare the instance failed (the coordinator is notified and
runs the transient-mode transition); the first successful ping of a
declared-failed instance declares recovery.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cache.instance import CacheOp
from repro.config.defaults import DEFAULT_HEARTBEAT_TIMEOUT
from repro.errors import NetworkError, ReproError
from repro.runtime import Kernel, Transport
from repro.sim.core import SimGenerator

__all__ = ["HeartbeatMonitor"]


class HeartbeatMonitor:
    """Pings instances and reports liveness flips to the coordinator."""

    def __init__(self, sim: Kernel, network: Transport, coordinator,
                 instances: List[str], interval: float = 0.5,
                 misses_to_fail: int = 2,
                 rpc_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT) -> None:
        self.sim = sim
        # The monitor is coordinator-colocated: a coordinator<->instance
        # partition makes it (correctly) perceive the instance as failed.
        self.network = network.bound(coordinator.address)
        self.coordinator = coordinator
        self.instances = list(instances)
        self.interval = interval
        self.misses_to_fail = misses_to_fail
        self.rpc_timeout = rpc_timeout
        self._misses: Dict[str, int] = {a: 0 for a in instances}
        self._declared_down: Dict[str, bool] = {a: False for a in instances}
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        for address in self.instances:
            self.sim.process(self._watch(address), name=f"heartbeat:{address}")

    def _watch(self, address: str) -> SimGenerator:
        while True:
            yield self.interval
            alive = yield from self._ping(address)
            if alive:
                self._misses[address] = 0
                if self._declared_down[address]:
                    self._declared_down[address] = False
                    self.coordinator.notify_recovery(address)
            else:
                self._misses[address] += 1
                if (self._misses[address] >= self.misses_to_fail
                        and not self._declared_down[address]):
                    self._declared_down[address] = True
                    self.coordinator.notify_failure(address)

    def _ping(self, address: str) -> SimGenerator:
        try:
            response = yield self.network.call(
                address, CacheOp(op="ping"), timeout=self.rpc_timeout)
        except (NetworkError, ReproError):
            return False
        return response == "pong"
