"""Coordinator: configuration management and fragment lifecycle.

* :mod:`repro.coordinator.coordinator` — the master coordinator: grants
  fragment assignments, drives the normal/transient/recovery mode machine
  (Figure 4), publishes configurations with increasing ids, and decides
  when a primary replica must be discarded (Section 3.2.4).
* :mod:`repro.coordinator.membership` — heartbeat failure detector for
  real (non-emulated) crashes.
* :mod:`repro.coordinator.shadow` — master + shadow coordinators with
  promotion on master failure (the paper uses ZooKeeper; its prototype,
  like ours, simulates the ensemble).
"""

from repro.coordinator.coordinator import Coordinator, CoordinatorOp
from repro.coordinator.membership import HeartbeatMonitor
from repro.coordinator.shadow import CoordinatorEnsemble

__all__ = ["Coordinator", "CoordinatorOp", "HeartbeatMonitor", "CoordinatorEnsemble"]
