"""Recovery policies: the four Gemini variations plus the two baselines.

Figure 5 of the paper crosses two knobs — how recovery workers treat
dirty keys (Invalidate vs Overwrite) and whether the working set is
transferred (+W) — giving Gemini-I, Gemini-O, Gemini-I+W, Gemini-O+W.
The evaluation compares them against:

* **VolatileCache** — discard the instance's content on recovery (what a
  DRAM cache does after power loss);
* **StaleCache** — reuse the content as-is, with no repair (what naive
  persistent caches do), trading stale reads for instant warmth.

A policy is pure configuration; the coordinator, client, and workers read
it to decide behaviour. Policies are frozen so they can be shared.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = [
    "RecoveryPolicy",
    "GEMINI_I", "GEMINI_O", "GEMINI_I_W", "GEMINI_O_W",
    "STALE_CACHE", "VOLATILE_CACHE",
    "policy_by_name",
]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Behaviour of the caching tier across a failure/recovery cycle."""

    name: str
    #: "gemini" = full protocol; "stale" = reuse content unrepaired;
    #: "volatile" = wipe content on recovery.
    kind: str
    #: Maintain dirty lists in secondaries during transient mode.
    maintain_dirty: bool
    #: Recovery workers overwrite dirty keys from the secondary (Gemini-O)
    #: instead of deleting them (Gemini-I).
    overwrite_dirty: bool
    #: Transfer the working set from secondary to primary (+W variants).
    working_set_transfer: bool
    #: Explicit hit-ratio threshold h terminating the transfer; None means
    #: "the instance's pre-failure hit ratio minus epsilon" (Section 3.2.2).
    wst_hit_threshold: Optional[float] = None
    #: Tolerance ε in the h / m = 1 - h + ε termination thresholds.
    wst_epsilon: float = 0.02
    #: Keys per batched repair operation; 1 = the sequential per-key
    #: protocol of Algorithm 3.
    batch_size: int = 32
    #: Bound on concurrently in-flight repair batches per fragment.
    max_inflight: int = 4

    def __post_init__(self) -> None:
        if self.kind not in ("gemini", "stale", "volatile"):
            raise ValueError(f"unknown policy kind {self.kind!r}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.kind != "gemini" and (self.maintain_dirty
                                      or self.working_set_transfer):
            raise ValueError(
                "baseline policies do not maintain dirty lists or transfer "
                "working sets")
        if self.wst_hit_threshold is not None and not (
                0.0 < self.wst_hit_threshold <= 1.0):
            raise ValueError("wst_hit_threshold must be in (0, 1]")

    @property
    def is_gemini(self) -> bool:
        return self.kind == "gemini"

    def with_batching(self, batch_size: int,
                      max_inflight: Optional[int] = None) -> "RecoveryPolicy":
        """Derive the same policy with different repair-batching knobs
        (``batch_size=1, max_inflight=1`` is the sequential baseline)."""
        return replace(self, batch_size=batch_size,
                       max_inflight=(max_inflight if max_inflight is not None
                                     else self.max_inflight))


GEMINI_I = RecoveryPolicy(
    name="Gemini-I", kind="gemini", maintain_dirty=True,
    overwrite_dirty=False, working_set_transfer=False)

GEMINI_O = RecoveryPolicy(
    name="Gemini-O", kind="gemini", maintain_dirty=True,
    overwrite_dirty=True, working_set_transfer=False)

GEMINI_I_W = RecoveryPolicy(
    name="Gemini-I+W", kind="gemini", maintain_dirty=True,
    overwrite_dirty=False, working_set_transfer=True)

GEMINI_O_W = RecoveryPolicy(
    name="Gemini-O+W", kind="gemini", maintain_dirty=True,
    overwrite_dirty=True, working_set_transfer=True)

STALE_CACHE = RecoveryPolicy(
    name="StaleCache", kind="stale", maintain_dirty=False,
    overwrite_dirty=False, working_set_transfer=False)

VOLATILE_CACHE = RecoveryPolicy(
    name="VolatileCache", kind="volatile", maintain_dirty=False,
    overwrite_dirty=False, working_set_transfer=False)

_BY_NAME = {
    policy.name: policy
    for policy in (GEMINI_I, GEMINI_O, GEMINI_I_W, GEMINI_O_W,
                   STALE_CACHE, VOLATILE_CACHE)
}


def policy_by_name(name: str) -> RecoveryPolicy:
    """Look up one of the six canonical policies by its paper name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
