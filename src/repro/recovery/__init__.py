"""Recovery policies (Gemini variants + baselines) and recovery workers."""

from repro.recovery.policies import (
    GEMINI_I,
    GEMINI_I_W,
    GEMINI_O,
    GEMINI_O_W,
    STALE_CACHE,
    VOLATILE_CACHE,
    RecoveryPolicy,
    policy_by_name,
)
from repro.recovery.worker import RecoveryWorker

__all__ = [
    "GEMINI_I",
    "GEMINI_I_W",
    "GEMINI_O",
    "GEMINI_O_W",
    "STALE_CACHE",
    "VOLATILE_CACHE",
    "RecoveryPolicy",
    "RecoveryWorker",
    "policy_by_name",
]
