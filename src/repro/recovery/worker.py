"""Stateless recovery workers (Algorithm 3, Section 3.2.3).

A worker scans the configuration for fragments in recovery mode, grabs
the Redlease on the fragment's dirty list (so exactly one worker repairs
each fragment), and then repairs every dirty key in the recovering
primary replica:

* **Gemini-O** (``policy.overwrite_dirty``): delete the key and acquire
  an I lease in the primary, read the latest value from the secondary,
  and install it — the recovering instance never pays a data-store query
  for that key again.
* **Gemini-I**: simply delete the dirty keys; the next reader refills
  from the data store. Cheaper when the access pattern has evolved and
  the dirty keys will never be referenced again.

Repairs are **batched and pipelined**: the dirty list is fetched in
cursor-based chunks (``get_dirty_page``), keys are repaired
``policy.batch_size`` at a time with the multi-key cache ops
(``batch_iset`` → ``mget`` → ``batch_iqset``, or one ``mdelete``), and up
to ``policy.max_inflight`` batches run concurrently as kernel
sub-processes. This collapses the 2–3 serial round trips per key of the
naive loop into 3 round trips per batch, overlapped across the window.

If the secondary becomes unreachable *mid-pass* under Gemini-O, the
worker degrades to Gemini-I deletes for the remainder of the pass (the
next reader refills from the store) instead of burning an RPC timeout
per key; degraded keys are counted in ``keys_degraded``.

Every step is idempotent (deleting or overwriting a dirty key commutes
with concurrent client sessions thanks to the IQ leases), so a worker
crash mid-pass is harmless: the Redlease expires and another worker
redoes the fragment (Section 3.3).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.cache.instance import CacheOp
from repro.coordinator.coordinator import CoordinatorOp
from repro.errors import (
    InstanceDown,
    LeaseBackoff,
    NetworkError,
    StaleConfiguration,
)
from repro.metrics.recovery import RecoveryRecorder
from repro.config.configuration import Configuration, FragmentInfo
from repro.recovery.policies import RecoveryPolicy
from repro.runtime import Kernel, Transport
from repro.sim.core import Process, SimGenerator
from repro.sim.rng import fallback_stream
from repro.types import CACHE_MISS, FragmentMode
from repro.verify.events import EventLog

__all__ = ["RecoveryWorker"]

_UNREACHABLE = (NetworkError, InstanceDown)


class RecoveryWorker:
    """One background repair worker."""

    def __init__(self, sim: Kernel, network: Transport,
                 policy: RecoveryPolicy,
                 coordinator_address: str = "coordinator",
                 name: str = "worker",
                 scan_interval: float = 0.05,
                 rng: Optional[random.Random] = None,
                 recovery_recorder: Optional[RecoveryRecorder] = None,
                 event_log: Optional[EventLog] = None) -> None:
        self.sim = sim
        #: Optional structured protocol-event stream (verify.events).
        self.event_log = event_log
        self.network = network.bound(name)
        self.policy = policy
        self.coordinator_address = coordinator_address
        self.name = name
        self.scan_interval = scan_interval
        self.rng = fallback_stream(rng, f"recovery-worker.{name}")
        self.recovery = recovery_recorder
        self.config: Optional[Configuration] = None
        self.fragments_recovered = 0
        self.keys_overwritten = 0
        self.keys_deleted = 0
        self.keys_skipped = 0
        #: Keys repaired via Gemini-I deletes because the secondary became
        #: unreachable mid-pass under Gemini-O.
        self.keys_degraded = 0
        self.batches_issued = 0
        #: Set when the current pass degraded to deletes; reset per pass.
        self._pass_degraded = False
        self._process: Optional[Process] = None

    # ------------------------------------------------------------------
    def on_config(self, config: Configuration) -> None:
        """Coordinator push subscription."""
        if self.config is None or config.config_id > self.config.config_id:
            self.config = config
            if self.event_log is not None:
                self.event_log.emit("config_observed", actor=self.name,
                                    config_id=config.config_id)

    def start(self) -> None:
        if self._process is None:
            self._process = self.sim.process(self._run(), name=self.name)

    def stop(self) -> None:
        if self._process is not None:
            self._process.interrupt("stopped")
            self._process = None

    # ------------------------------------------------------------------
    def _run(self) -> SimGenerator:
        while True:
            yield self.scan_interval * (0.5 + self.rng.random())
            if self.config is None:
                continue
            for fragment in self.config.fragments:
                if fragment.mode is not FragmentMode.RECOVERY:
                    continue
                yield from self._recover_fragment(fragment.fragment_id)

    def _mode_of(self, fragment_id: int) -> FragmentMode:
        return self.config.fragment(fragment_id).mode

    def _cfg(self, cfg_id: int, **fields) -> CacheOp:
        """Build a cache op stamped with the repair *pass's* config id.

        Like client sessions, a pass stamps the configuration it routed
        under (captured in :meth:`_recover_fragment`): if the
        configuration moves mid-pass, the next op bounces with
        StaleConfiguration and the pass aborts instead of completing
        against superseded routing.
        """
        return CacheOp(client_cfg_id=cfg_id, **fields)

    def _recover_fragment(self, fragment_id: int) -> SimGenerator:
        fragment = self.config.fragment(fragment_id)
        secondary = fragment.secondary
        cfg = self.config.config_id
        red_token = None
        self._pass_degraded = False
        tracer = self.sim.tracer
        span = (tracer.begin("repair-pass", kind="recovery", worker=self.name,
                             fragment_id=fragment_id, config_id=cfg)
                if tracer is not None else None)
        try:
            if secondary is not None:
                try:
                    red_token = yield self.network.call(
                        secondary, self._cfg(cfg, op="red_acquire",
                                             fragment_id=fragment_id))
                except LeaseBackoff:
                    # another worker owns this fragment
                    if tracer is not None:
                        tracer.end(span, status="lease-backoff")
                    return
                except StaleConfiguration:
                    # the configuration moved mid-scan; retry next pass
                    if tracer is not None:
                        tracer.end(span, status="stale-config")
                    return
                except _UNREACHABLE:
                    # truly gone: repair from the fallback copy
                    secondary = None
                    if span is not None:
                        span.attrs["degraded"] = True
            processed_all = yield from self._repair_fragment(
                fragment_id, secondary, cfg)
            if processed_all is None:
                # Stale-config abort: release the Redlease and retry later.
                if secondary is not None and red_token is not None:
                    try:
                        yield self.network.call(
                            secondary, self._cfg(cfg, op="red_release",
                                                 fragment_id=fragment_id,
                                                 token=red_token))
                    except (StaleConfiguration, *_UNREACHABLE):
                        pass
                if tracer is not None:
                    tracer.end(span, status="aborted")
                return
            if secondary is not None and red_token is not None:
                if processed_all:
                    try:
                        yield self.network.call(
                            secondary, self._cfg(cfg, op="delete_dirty",
                                                 fragment_id=fragment_id))
                    except (StaleConfiguration, *_UNREACHABLE):
                        pass
                try:
                    yield self.network.call(
                        secondary, self._cfg(cfg, op="red_release",
                                             fragment_id=fragment_id,
                                             token=red_token))
                except (StaleConfiguration, *_UNREACHABLE):
                    pass
            if processed_all:
                self.fragments_recovered += 1
                try:
                    yield self.network.call(
                        self.coordinator_address,
                        CoordinatorOp(op="dirty_done",
                                      fragment_id=fragment_id))
                except _UNREACHABLE:
                    pass
            if tracer is not None:
                tracer.end(span, processed_all=bool(processed_all))
        finally:
            # Idempotent backstop: an unexpected exception must not leave
            # the pass span on this worker process's context stack.
            if tracer is not None:
                tracer.end(span, status="error")

    # ------------------------------------------------------------------
    # Dirty-list fetching
    # ------------------------------------------------------------------
    def _page_limit(self) -> int:
        """Keys per dirty-list chunk: enough to keep the window fed."""
        return max(64, self.policy.batch_size * self.policy.max_inflight)

    def _repair_fragment(self, fragment_id: int, secondary: Optional[str],
                         cfg: int) -> SimGenerator:
        """Fetch the dirty list in chunks and repair each chunk.

        Returns True when every key was handled, False when the pass was
        aborted mid-repair, None on a stale-configuration abort during
        the fetch (the caller releases the Redlease and retries later).
        """
        if secondary is None:
            keys = yield from self._fetch_dirty_keys(fragment_id, None, cfg)
            if keys is None:
                return None
            return (yield from self._repair_keys(fragment_id, keys,
                                                 secondary, cfg))
        cursor = 0
        limit = self._page_limit()
        while True:
            try:
                page = yield self.network.call(
                    secondary, self._cfg(cfg, op="get_dirty_page",
                                         fragment_id=fragment_id,
                                         payload={"after": cursor,
                                                  "limit": limit}))
            except StaleConfiguration:
                return None
            except _UNREACHABLE:
                page = CACHE_MISS
            if page is CACHE_MISS or not page.complete:
                # Evicted, partial, or the secondary just died: fall back
                # to the monolithic fetch (which itself falls back to the
                # coordinator's copy when the secondary cannot serve one).
                keys = yield from self._fetch_dirty_keys(fragment_id,
                                                         secondary, cfg)
                if keys is None:
                    return None
                return (yield from self._repair_keys(fragment_id, keys,
                                                     secondary, cfg))
            if page.keys:
                ok = yield from self._repair_keys(
                    fragment_id, list(page.keys), secondary, cfg)
                if not ok:
                    return False
            if not page.more:
                return True
            cursor = page.cursor

    def _fetch_dirty_keys(self, fragment_id: int, secondary: Optional[str],
                          cfg: int) -> SimGenerator:
        """Monolithic dirty-list fetch; the fallback for chunked reads.

        Returns None on a stale-configuration abort.
        """
        if secondary is not None:
            try:
                dirty = yield self.network.call(
                    secondary, self._cfg(cfg, op="get_dirty",
                                         fragment_id=fragment_id))
            except StaleConfiguration:
                return None  # abort the pass; retry under the new config
            except _UNREACHABLE:
                dirty = CACHE_MISS
            if dirty is not CACHE_MISS and dirty.complete:
                return dirty.keys()
        try:
            copy = yield self.network.call(
                self.coordinator_address,
                CoordinatorOp(op="get_dirty_copy", fragment_id=fragment_id))
        except _UNREACHABLE:
            copy = []
        return list(copy)

    # ------------------------------------------------------------------
    # Pipelined batch repair
    # ------------------------------------------------------------------
    def _repair_keys(self, fragment_id: int, keys: List[str],
                     secondary: Optional[str], cfg: int) -> SimGenerator:
        """Repair ``keys`` with a bounded window of in-flight batches.

        Returns True when every key was handled and the fragment stayed
        in recovery mode for the whole pass.
        """
        batch = self.policy.batch_size
        window = self.policy.max_inflight
        inflight = []
        ok = True
        for start in range(0, len(keys), batch):
            fragment = self.config.fragment(fragment_id)
            if fragment.mode is not FragmentMode.RECOVERY:
                ok = False  # aborted by a concurrent transition
                break
            chunk = keys[start:start + batch]
            if self.recovery is not None:
                self.recovery.batch_started(fragment_id)
            self.batches_issued += 1
            inflight.append(self.sim.process(
                self._repair_chunk(fragment, chunk, secondary, cfg),
                name=f"{self.name}:repair:{fragment_id}"))
            if len(inflight) >= window:
                yield self.sim.any_of(inflight)
                still_running = []
                for process in inflight:
                    if process.triggered:
                        if not self._collect(fragment_id, process.value):
                            ok = False
                    else:
                        still_running.append(process)
                inflight = still_running
                if not ok:
                    break
        if inflight:
            yield self.sim.all_of(inflight)
            for process in inflight:
                if not self._collect(fragment_id, process.value):
                    ok = False
        return ok

    def _collect(self, fragment_id: int, result: Dict[str, int]) -> bool:
        """Fold one finished batch into the worker/recorder counters."""
        self.keys_overwritten += result["overwritten"]
        self.keys_deleted += result["deleted"]
        self.keys_skipped += result["skipped"]
        self.keys_degraded += result["degraded"]
        if self.recovery is not None:
            self.recovery.batch_finished(
                fragment_id, self.sim.now,
                repaired=result["overwritten"] + result["deleted"],
                skipped=result["skipped"], degraded=result["degraded"])
        return result["abort"] is None

    def _repair_chunk(self, fragment: FragmentInfo, keys: List[str],
                      secondary: Optional[str], cfg: int) -> SimGenerator:
        """One batch repair sub-process. Never raises the expected repair
        errors — they are reported through the result record so that the
        window's AllOf/AnyOf composites cannot fail spuriously."""
        result = {"overwritten": 0, "deleted": 0, "skipped": 0,
                  "degraded": 0, "abort": None}
        try:
            if (self.policy.overwrite_dirty and secondary is not None
                    and not self._pass_degraded):
                yield from self._overwrite_chunk(fragment, keys, secondary,
                                                 cfg, result)
            else:
                yield from self._delete_chunk(fragment, keys, cfg, result)
        except StaleConfiguration:
            result["abort"] = "stale"
        except _UNREACHABLE:
            result["abort"] = "unreachable"
        return result

    def _overwrite_chunk(self, fragment: FragmentInfo, keys: List[str],
                         secondary: str, cfg: int,
                         result: Dict[str, Any]) -> SimGenerator:
        """Gemini-O: refresh the primary's copies from the secondary —
        three round trips for the whole batch."""
        tokens = yield self.network.call(
            fragment.primary,
            self._cfg(cfg, op="batch_iset", keys=list(keys),
                      fragment_cfg_id=fragment.cfg_id))
        held = [(key, tokens[key]) for key in keys
                if tokens.get(key) is not None]
        # A client session owns the skipped keys right now; whatever it
        # installs is fresh, so their repair is already happening.
        result["skipped"] += len(keys) - len(held)
        if not held:
            return
        degraded = False
        try:
            values = yield self.network.call(
                secondary, self._cfg(cfg, op="mget",
                                     keys=[key for key, __ in held],
                                     fragment_cfg_id=fragment.cfg_id))
        except StaleConfiguration:
            # The secondary moved ahead mid-chunk; treat its copies as
            # missing (delete path), exactly like the per-key protocol.
            values = {}
        except _UNREACHABLE:
            # The secondary died mid-pass: degrade to Gemini-I deletes
            # for this chunk and the remainder of the pass.
            self._pass_degraded = True
            degraded = True
            values = {}
        items = [(key, values.get(key, CACHE_MISS), token)
                 for key, token in held]
        installed = yield self.network.call(
            fragment.primary,
            self._cfg(cfg, op="batch_iqset", payload=items,
                      fragment_cfg_id=fragment.cfg_id))
        for key, value, __ in items:
            if value is CACHE_MISS:
                result["deleted"] += 1
                if degraded:
                    result["degraded"] += 1
            elif installed.get(key):
                result["overwritten"] += 1
            else:
                result["skipped"] += 1  # lease voided by a client session

    def _delete_chunk(self, fragment: FragmentInfo, keys: List[str], cfg: int,
                      result: Dict[str, Any]) -> SimGenerator:
        """Gemini-I (or a degraded Gemini-O pass): drop the stale copies;
        the next read refills them. One round trip per batch."""
        yield self.network.call(
            fragment.primary,
            self._cfg(cfg, op="mdelete", keys=list(keys),
                      fragment_cfg_id=fragment.cfg_id))
        result["deleted"] += len(keys)
        if self.policy.overwrite_dirty and self._pass_degraded:
            result["degraded"] += len(keys)
