"""Stateless recovery workers (Algorithm 3, Section 3.2.3).

A worker scans the configuration for fragments in recovery mode, grabs
the Redlease on the fragment's dirty list (so exactly one worker repairs
each fragment), and then repairs every dirty key in the recovering
primary replica:

* **Gemini-O** (``policy.overwrite_dirty``): delete the key and acquire
  an I lease in the primary, read the latest value from the secondary,
  and install it — the recovering instance never pays a data-store query
  for that key again.
* **Gemini-I**: simply delete the dirty keys; the next reader refills
  from the data store. Cheaper when the access pattern has evolved and
  the dirty keys will never be referenced again.

Every step is idempotent (deleting or overwriting a dirty key commutes
with concurrent client sessions thanks to the IQ leases), so a worker
crash mid-pass is harmless: the Redlease expires and another worker
redoes the fragment (Section 3.3).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.cache.instance import CacheOp
from repro.coordinator.coordinator import CoordinatorOp
from repro.errors import (
    InstanceDown,
    LeaseBackoff,
    NetworkError,
    StaleConfiguration,
)
from repro.recovery.policies import RecoveryPolicy
from repro.sim.core import Simulator
from repro.sim.network import Network
from repro.types import CACHE_MISS, FragmentMode

__all__ = ["RecoveryWorker"]

_UNREACHABLE = (NetworkError, InstanceDown)


class RecoveryWorker:
    """One background repair worker."""

    def __init__(self, sim: Simulator, network: Network,
                 policy: RecoveryPolicy,
                 coordinator_address: str = "coordinator",
                 name: str = "worker",
                 scan_interval: float = 0.05,
                 rng: Optional[random.Random] = None):
        self.sim = sim
        self.network = network
        self.policy = policy
        self.coordinator_address = coordinator_address
        self.name = name
        self.scan_interval = scan_interval
        self.rng = rng if rng is not None else random.Random(0)
        self.config = None
        self.fragments_recovered = 0
        self.keys_overwritten = 0
        self.keys_deleted = 0
        self.keys_skipped = 0
        self._process = None

    # ------------------------------------------------------------------
    def on_config(self, config) -> None:
        """Coordinator push subscription."""
        if self.config is None or config.config_id > self.config.config_id:
            self.config = config

    def start(self) -> None:
        if self._process is None:
            self._process = self.sim.process(self._run(), name=self.name)

    def stop(self) -> None:
        if self._process is not None:
            self._process.interrupt("stopped")
            self._process = None

    # ------------------------------------------------------------------
    def _run(self):
        while True:
            yield self.scan_interval * (0.5 + self.rng.random())
            if self.config is None:
                continue
            for fragment in self.config.fragments:
                if fragment.mode is not FragmentMode.RECOVERY:
                    continue
                yield from self._recover_fragment(fragment.fragment_id)

    def _mode_of(self, fragment_id: int) -> FragmentMode:
        return self.config.fragment(fragment_id).mode

    def _cfg(self, **fields) -> CacheOp:
        fields.setdefault("client_cfg_id", self.config.config_id)
        return CacheOp(**fields)

    def _recover_fragment(self, fragment_id: int):
        fragment = self.config.fragment(fragment_id)
        secondary = fragment.secondary
        red_token = None
        if secondary is not None:
            try:
                red_token = yield self.network.call(
                    secondary, self._cfg(op="red_acquire",
                                         fragment_id=fragment_id))
            except LeaseBackoff:
                return  # another worker owns this fragment
            except StaleConfiguration:
                return  # the configuration moved mid-scan; retry next pass
            except _UNREACHABLE:
                secondary = None  # truly gone: repair from the fallback copy
        keys = yield from self._fetch_dirty_keys(fragment_id, secondary)
        if keys is None:
            # Stale-config abort: release the Redlease and retry later.
            if secondary is not None and red_token is not None:
                try:
                    yield self.network.call(
                        secondary, self._cfg(op="red_release",
                                             fragment_id=fragment_id,
                                             token=red_token))
                except (StaleConfiguration, *_UNREACHABLE):
                    pass
            return
        processed_all = yield from self._repair_keys(
            fragment_id, keys, secondary)
        if secondary is not None and red_token is not None:
            if processed_all:
                try:
                    yield self.network.call(
                        secondary, self._cfg(op="delete_dirty",
                                             fragment_id=fragment_id))
                except (StaleConfiguration, *_UNREACHABLE):
                    pass
            try:
                yield self.network.call(
                    secondary, self._cfg(op="red_release",
                                         fragment_id=fragment_id,
                                         token=red_token))
            except (StaleConfiguration, *_UNREACHABLE):
                pass
        if processed_all:
            self.fragments_recovered += 1
            try:
                yield self.network.call(
                    self.coordinator_address,
                    CoordinatorOp(op="dirty_done", fragment_id=fragment_id))
            except _UNREACHABLE:
                pass

    def _fetch_dirty_keys(self, fragment_id: int,
                          secondary: Optional[str]) -> List[str]:
        if secondary is not None:
            try:
                dirty = yield self.network.call(
                    secondary, self._cfg(op="get_dirty",
                                         fragment_id=fragment_id))
            except StaleConfiguration:
                return None  # abort the pass; retry under the new config
            except _UNREACHABLE:
                dirty = CACHE_MISS
            if dirty is not CACHE_MISS and dirty.complete:
                return dirty.keys()
        try:
            copy = yield self.network.call(
                self.coordinator_address,
                CoordinatorOp(op="get_dirty_copy", fragment_id=fragment_id))
        except _UNREACHABLE:
            copy = []
        return list(copy)

    def _repair_keys(self, fragment_id: int, keys: List[str],
                     secondary: Optional[str]):
        """Returns True when every key was handled and the fragment stayed
        in recovery mode for the whole pass."""
        for key in keys:
            fragment = self.config.fragment(fragment_id)
            if fragment.mode is not FragmentMode.RECOVERY:
                return False  # aborted by a concurrent transition
            try:
                if self.policy.overwrite_dirty and secondary is not None:
                    yield from self._overwrite_key(fragment, key, secondary)
                else:
                    yield from self._delete_key(fragment, key)
            except LeaseBackoff:
                # A client session owns this key right now; whatever it
                # installs is fresh, so the repair is already happening.
                self.keys_skipped += 1
            except StaleConfiguration:
                return False
            except _UNREACHABLE:
                return False
        return True

    def _overwrite_key(self, fragment, key: str, secondary: str):
        """Gemini-O: refresh the primary's copy from the secondary."""
        token = yield self.network.call(
            fragment.primary,
            self._cfg(op="iset", key=key, fragment_cfg_id=fragment.cfg_id))
        try:
            value = yield self.network.call(
                secondary, self._cfg(op="get", key=key,
                                     fragment_cfg_id=fragment.cfg_id))
        except (StaleConfiguration, *_UNREACHABLE):
            value = CACHE_MISS
        if value is not CACHE_MISS:
            yield self.network.call(
                fragment.primary,
                self._cfg(op="iqset", key=key, value=value, token=token,
                          fragment_cfg_id=fragment.cfg_id))
            self.keys_overwritten += 1
        else:
            yield self.network.call(
                fragment.primary,
                self._cfg(op="idelete", key=key, token=token,
                          fragment_cfg_id=fragment.cfg_id))
            self.keys_deleted += 1

    def _delete_key(self, fragment, key: str):
        """Gemini-I: drop the stale copy; the next read refills it."""
        yield self.network.call(
            fragment.primary,
            self._cfg(op="delete", key=key, fragment_cfg_id=fragment.cfg_id))
        self.keys_deleted += 1
