"""Exception hierarchy for the Gemini reproduction.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause
while still being able to discriminate the interesting cases (lease
back-off, unavailable instances, stale configurations, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly."""


class Interrupt(ReproError):
    """A process was interrupted (e.g. by failure injection).

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class NetworkError(ReproError):
    """Base class for simulated network failures."""


class HostUnreachable(NetworkError):
    """The destination node is down or unknown; the RPC timed out."""

    def __init__(self, address, message=""):
        super().__init__(message or f"host {address!r} unreachable")
        self.address = address


class RequestTimeout(NetworkError):
    """An RPC did not complete within its timeout."""


class CacheError(ReproError):
    """Base class for cache-instance level errors."""


class LeaseBackoff(CacheError):
    """A lease request must back off and retry (I/I or Redlease conflict)."""

    def __init__(self, key, message=""):
        super().__init__(message or f"back off on {key!r}")
        self.key = key


class LeaseVoided(CacheError):
    """An operation presented a lease token that is no longer valid."""


class InstanceDown(CacheError):
    """The cache instance is failed and cannot serve requests."""


class StaleConfiguration(ReproError):
    """A request carried a configuration id older than the instance's.

    Clients react by refreshing their cached configuration (Section 2.1 /
    Rejig protocol).
    """

    def __init__(self, known_id, message=""):
        super().__init__(message or f"stale configuration, instance knows id {known_id}")
        self.known_id = known_id


class FragmentUnavailable(ReproError):
    """No replica of the fragment can currently serve requests.

    Raised during the window between a primary failing and the coordinator
    publishing a secondary (Section 2.2: writes are suspended, reads go to
    the data store).
    """

    def __init__(self, fragment_id, message=""):
        super().__init__(message or f"fragment {fragment_id} unavailable")
        self.fragment_id = fragment_id


class CoordinatorError(ReproError):
    """The coordinator rejected a request or is itself unavailable."""


class WorkloadError(ReproError):
    """A workload generator was configured with invalid parameters."""


class ConsistencyViolation(ReproError):
    """Raised by the verification oracle when configured to be strict."""
